//! Windowed instruments: counters and histograms over a ring of epoch
//! buckets advanced by an explicit logical-clock [`tick`](WindowedCounter::tick).
//!
//! Nothing here reads a wall clock. An *epoch* is whatever the caller
//! makes it — a simulated day, a bench phase, a telemetry interval — and
//! `tick()` rotates the ring deterministically, so two identical runs
//! produce identical windows. Each instrument keeps its cumulative view
//! alongside the rolling one, and maintains the invariant
//!
//! ```text
//! sum(live window buckets) + expired == total
//! ```
//!
//! even under concurrent `record`/`tick`: a racing record lands in
//! exactly one live bucket (possibly one epoch off), never outside the
//! accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::{bucket_index, N_BUCKETS};
use crate::snapshot::{
    BucketCount, HistogramSnapshot, WindowedCounterSnapshot, WindowedHistogramSnapshot,
};

/// Default ring length (epochs retained by the rolling view).
pub const DEFAULT_WINDOW: usize = 8;

/// A counter that tracks a rolling window of epochs alongside its
/// cumulative total.
///
/// `add` is two relaxed `fetch_add`s; `tick` advances the epoch and
/// retires the bucket that falls out of the window into `expired`.
#[derive(Clone, Debug)]
pub struct WindowedCounter {
    inner: Arc<WindowedCounterInner>,
}

#[derive(Debug)]
struct WindowedCounterInner {
    buckets: Box<[AtomicU64]>,
    total: AtomicU64,
    expired: AtomicU64,
    epoch: AtomicU64,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter::new(DEFAULT_WINDOW)
    }
}

impl WindowedCounter {
    /// A counter whose rolling view spans `window` epochs (min 1).
    pub fn new(window: usize) -> Self {
        let buckets: Vec<AtomicU64> = (0..window.max(1)).map(|_| AtomicU64::new(0)).collect();
        WindowedCounter {
            inner: Arc::new(WindowedCounterInner {
                buckets: buckets.into_boxed_slice(),
                total: AtomicU64::new(0),
                expired: AtomicU64::new(0),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// Adds one.
    #[inline]
    pub fn increment(&self) {
        self.add(1);
    }

    /// Adds `n` to the current epoch's bucket and the cumulative total.
    #[inline]
    pub fn add(&self, n: u64) {
        let inner = &*self.inner;
        let e = inner.epoch.load(Ordering::Acquire) as usize;
        inner.buckets[e % inner.buckets.len()].fetch_add(n, Ordering::Relaxed);
        inner.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Advances the logical clock by one epoch. The ring slot that now
    /// becomes current held the oldest epoch; its contents retire into
    /// `expired`.
    pub fn tick(&self) {
        let inner = &*self.inner;
        let new = inner.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        let slot = new as usize % inner.buckets.len();
        let old = inner.buckets[slot].swap(0, Ordering::AcqRel);
        inner.expired.fetch_add(old, Ordering::Relaxed);
    }

    /// Cumulative count since creation.
    pub fn total(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Count retired out of the window by ticks.
    pub fn expired(&self) -> u64 {
        self.inner.expired.load(Ordering::Relaxed)
    }

    /// Current epoch number (ticks so far).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Relaxed)
    }

    /// Ring length in epochs.
    pub fn window_len(&self) -> usize {
        self.inner.buckets.len()
    }

    /// Sum over the live window (the current epoch plus up to
    /// `window_len - 1` completed ones).
    pub fn window_sum(&self) -> u64 {
        self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// `window_sum` averaged over the epochs actually covered so far
    /// (ramps up until the ring is full).
    pub fn rate_per_tick(&self) -> f64 {
        let live = (self.epoch() + 1).min(self.window_len() as u64);
        self.window_sum() as f64 / live as f64
    }

    /// Captures the counter's state.
    pub fn snapshot(&self, name: &str) -> WindowedCounterSnapshot {
        WindowedCounterSnapshot {
            name: name.to_string(),
            total: self.total(),
            window_sum: self.window_sum(),
            expired: self.expired(),
            epoch: self.epoch(),
            window_len: self.window_len() as u64,
            rate_per_tick: self.rate_per_tick(),
        }
    }
}

/// A histogram that keeps a full log-linear bucket array per window
/// epoch, merged on demand for rolling p50/p95/p99, alongside the
/// cumulative distribution.
#[derive(Clone)]
pub struct WindowedHistogram {
    inner: Arc<WindowedHistogramInner>,
}

struct WindowedHistogramInner {
    window: usize,
    /// `window * N_BUCKETS`, row-major by epoch slot.
    slots: Box<[AtomicU64]>,
    slot_counts: Box<[AtomicU64]>,
    slot_sums: Box<[AtomicU64]>,
    cum_buckets: Box<[AtomicU64]>,
    cum_count: AtomicU64,
    cum_sum: AtomicU64,
    expired_count: AtomicU64,
    expired_sum: AtomicU64,
    epoch: AtomicU64,
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram")
            .field("window", &self.inner.window)
            .field("epoch", &self.epoch())
            .field("count", &self.count())
            .finish()
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new(DEFAULT_WINDOW)
    }
}

impl WindowedHistogram {
    /// A histogram whose rolling view spans `window` epochs (min 1).
    pub fn new(window: usize) -> Self {
        let window = window.max(1);
        let zeros = |n: usize| -> Box<[AtomicU64]> {
            (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice()
        };
        WindowedHistogram {
            inner: Arc::new(WindowedHistogramInner {
                window,
                slots: zeros(window * N_BUCKETS),
                slot_counts: zeros(window),
                slot_sums: zeros(window),
                cum_buckets: zeros(N_BUCKETS),
                cum_count: AtomicU64::new(0),
                cum_sum: AtomicU64::new(0),
                expired_count: AtomicU64::new(0),
                expired_sum: AtomicU64::new(0),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation into the current epoch and the cumulative
    /// distribution (atomics only).
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.inner;
        let i = bucket_index(value);
        let e = inner.epoch.load(Ordering::Acquire) as usize % inner.window;
        inner.slots[e * N_BUCKETS + i].fetch_add(1, Ordering::Relaxed);
        inner.slot_counts[e].fetch_add(1, Ordering::Relaxed);
        inner.slot_sums[e].fetch_add(value, Ordering::Relaxed);
        inner.cum_buckets[i].fetch_add(1, Ordering::Relaxed);
        inner.cum_count.fetch_add(1, Ordering::Relaxed);
        inner.cum_sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Advances the logical clock by one epoch, retiring the slot that
    /// falls out of the window.
    pub fn tick(&self) {
        let inner = &*self.inner;
        let new = inner.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        let s = new as usize % inner.window;
        let count = inner.slot_counts[s].swap(0, Ordering::AcqRel);
        let sum = inner.slot_sums[s].swap(0, Ordering::AcqRel);
        inner.expired_count.fetch_add(count, Ordering::Relaxed);
        inner.expired_sum.fetch_add(sum, Ordering::Relaxed);
        for b in &inner.slots[s * N_BUCKETS..(s + 1) * N_BUCKETS] {
            b.swap(0, Ordering::AcqRel);
        }
    }

    /// Cumulative observation count since creation.
    pub fn count(&self) -> u64 {
        self.inner.cum_count.load(Ordering::Relaxed)
    }

    /// Observations retired out of the window by ticks.
    pub fn expired_count(&self) -> u64 {
        self.inner.expired_count.load(Ordering::Relaxed)
    }

    /// Current epoch number (ticks so far).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Relaxed)
    }

    /// Ring length in epochs.
    pub fn window_len(&self) -> usize {
        self.inner.window
    }

    /// Observations currently inside the live window.
    pub fn window_count(&self) -> u64 {
        self.inner.slot_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The live window's epochs merged into one distribution; quantiles
    /// of this snapshot are the rolling p50/p95/p99.
    pub fn rolling_snapshot(&self, name: &str) -> HistogramSnapshot {
        let inner = &*self.inner;
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for i in 0..N_BUCKETS {
            let mut c = 0u64;
            for e in 0..inner.window {
                c += inner.slots[e * N_BUCKETS + i].load(Ordering::Relaxed);
            }
            if c > 0 {
                buckets.push(BucketCount { index: i as u32, count: c });
                count += c;
            }
        }
        let sum = inner.slot_sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        HistogramSnapshot { name: name.to_string(), count, sum, buckets }
    }

    /// The cumulative (since creation) distribution.
    pub fn cumulative_snapshot(&self, name: &str) -> HistogramSnapshot {
        let inner = &*self.inner;
        let mut buckets = Vec::new();
        for (i, b) in inner.cum_buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push(BucketCount { index: i as u32, count: c });
            }
        }
        HistogramSnapshot {
            name: name.to_string(),
            count: inner.cum_count.load(Ordering::Relaxed),
            sum: inner.cum_sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// The `q`-quantile of the live window (0.0 when the window is empty).
    pub fn rolling_quantile(&self, q: f64) -> f64 {
        self.rolling_snapshot("").quantile(q)
    }

    /// Captures both views.
    pub fn snapshot(&self, name: &str) -> WindowedHistogramSnapshot {
        WindowedHistogramSnapshot {
            name: name.to_string(),
            epoch: self.epoch(),
            window_len: self.inner.window as u64,
            cumulative: self.cumulative_snapshot(name),
            rolling: self.rolling_snapshot(name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_retires_exactly_the_out_of_window_epoch() {
        let c = WindowedCounter::new(3);
        // Epoch 0: 5, epoch 1: 7, epoch 2: 11 — ring full, nothing expired.
        c.add(5);
        c.tick();
        c.add(7);
        c.tick();
        c.add(11);
        assert_eq!(c.window_sum(), 23);
        assert_eq!(c.expired(), 0);
        // Epoch 3 reuses epoch 0's slot: its 5 must expire, rest stays.
        c.tick();
        assert_eq!(c.expired(), 5);
        assert_eq!(c.window_sum(), 18);
        c.tick();
        assert_eq!(c.expired(), 12);
        assert_eq!(c.window_sum(), 11);
        c.tick();
        assert_eq!(c.expired(), 23);
        assert_eq!(c.window_sum(), 0);
        assert_eq!(c.total(), 23);
        assert_eq!(c.window_sum() + c.expired(), c.total());
    }

    #[test]
    fn window_of_one_retires_every_epoch() {
        let c = WindowedCounter::new(1);
        c.add(4);
        c.tick();
        assert_eq!(c.window_sum(), 0);
        assert_eq!(c.expired(), 4);
        c.add(2);
        assert_eq!(c.window_sum(), 2);
        assert_eq!(c.window_sum() + c.expired(), c.total());
    }

    #[test]
    fn rate_ramps_up_until_ring_is_full() {
        let c = WindowedCounter::new(4);
        c.add(8);
        assert_eq!(c.rate_per_tick(), 8.0); // 1 live epoch
        c.tick();
        c.add(4);
        assert_eq!(c.rate_per_tick(), 6.0); // 12 over 2 epochs
        c.tick();
        c.tick();
        assert_eq!(c.rate_per_tick(), 3.0); // 12 over the full ring of 4
        c.tick();
        assert_eq!(c.rate_per_tick(), 1.0); // ring wrapped: epoch 0's 8 expired
    }

    #[test]
    fn concurrent_record_while_ticking_is_lossless() {
        // The satellite invariant: whatever interleaving of records and
        // ticks occurs, at quiescence every recorded unit is either in a
        // live window bucket or in `expired`.
        let c = WindowedCounter::new(4);
        let h = WindowedHistogram::new(4);
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 20_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.increment();
                        h.record(t as u64 * 1_000 + i % 113);
                    }
                });
            }
            let c = c.clone();
            let h = h.clone();
            s.spawn(move || {
                for _ in 0..500 {
                    c.tick();
                    h.tick();
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(c.total(), THREADS as u64 * PER_THREAD);
        assert_eq!(
            c.window_sum() + c.expired(),
            c.total(),
            "a record escaped the window accounting"
        );
        assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
        assert_eq!(h.window_count() + h.expired_count(), h.count());
        // Per-bucket detail reconciles too: merged rolling buckets match
        // the rolling count.
        let rolling = h.rolling_snapshot("h");
        let merged: u64 = rolling.buckets.iter().map(|b| b.count).sum();
        assert_eq!(merged, rolling.count);
    }

    #[test]
    fn rolling_quantiles_forget_old_epochs() {
        let h = WindowedHistogram::new(2);
        for _ in 0..1_000 {
            h.record(10);
        }
        assert!(h.rolling_quantile(0.5) < 20.0);
        h.tick();
        for _ in 0..1_000 {
            h.record(100_000);
        }
        // Window still holds both epochs: p50 sits between the modes.
        let p50_mixed = h.rolling_quantile(0.5);
        h.tick();
        // The 10s fell out; p95 and p50 now both reflect only 100_000s.
        let p50_new = h.rolling_quantile(0.5);
        assert!(p50_new > p50_mixed || p50_mixed >= 90_000.0);
        assert!((90_000.0..=110_000.0).contains(&p50_new), "p50 {p50_new}");
        // Cumulative view still remembers everything.
        assert_eq!(h.count(), 2_000);
        assert_eq!(h.cumulative_snapshot("h").count, 2_000);
        assert_eq!(h.window_count(), 1_000);
        assert_eq!(h.expired_count(), 1_000);
    }

    #[test]
    fn snapshots_expose_both_views() {
        let c = WindowedCounter::new(4);
        c.add(3);
        c.tick();
        c.add(1);
        let snap = c.snapshot("wc");
        assert_eq!(snap.total, 4);
        assert_eq!(snap.window_sum, 4);
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.window_len, 4);

        let h = WindowedHistogram::new(4);
        h.record(50);
        h.tick();
        h.record(70);
        let snap = h.snapshot("wh");
        assert_eq!(snap.cumulative.count, 2);
        assert_eq!(snap.rolling.count, 2);
        assert_eq!(snap.epoch, 1);
    }
}
