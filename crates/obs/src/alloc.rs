//! A counting global allocator for zero-allocation assertions.
//!
//! The serve path promises zero heap allocations on a cache hit; a
//! promise like that rots silently unless a test can observe every
//! allocation. [`CountingAllocator`] wraps [`std::alloc::System`] and
//! counts `alloc`/`realloc` calls in a per-thread counter, so a test (or
//! the `saturate` bench) installs it as the `#[global_allocator]`,
//! samples [`thread_allocations`] around the section under scrutiny, and
//! asserts the delta is zero.
//!
//! The counter is per-thread — concurrent allocations on *other* threads
//! (background workers, the test harness) don't pollute the measurement
//! — and lives in a `const`-initialized `thread_local` `Cell`, which is
//! guaranteed not to allocate on first access (a lazily-initialized TLS
//! slot could recurse into the allocator it is counting).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A drop-in `#[global_allocator]` that counts allocations per thread.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rc_obs::CountingAllocator = rc_obs::CountingAllocator;
///
/// let before = rc_obs::thread_allocations();
/// hot_path();
/// assert_eq!(rc_obs::thread_allocations() - before, 0);
/// ```
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations performed by the *calling thread* since it started,
/// as counted by [`CountingAllocator`]. Always 0 unless the allocator is
/// installed as the `#[global_allocator]`.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}
