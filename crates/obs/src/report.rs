//! Machine-readable bench reports (`BENCH_*.json`).
//!
//! A [`BenchReport`] is a versioned JSON document the bench binaries
//! write next to their stdout tables so the perf trajectory is tracked
//! across PRs. The schema separates what must be reproducible from what
//! cannot be:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "sched",
//!   "config": { "scale": 0.05, ... },     // run parameters
//!   "results": { ... },                   // deterministic outputs
//!   "counters": { "rc_...": 123, ... },   // registry snapshot deltas
//!   "quantiles": { "store_get_ns": { "count": n, "mean": ..., "p50": ... } },
//!   "spans": { "pipeline.train": ns, ... }
//! }
//! ```
//!
//! `config`, `results`, and `counters` must be byte-identical across a
//! double run at the same scale; `quantiles` and `spans` carry
//! wall-clock timings and are excluded from that comparison (see
//! [`deterministic_view`]). CI enforces both properties with the
//! `report_check` binary.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Serialize, Value};

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use crate::tracing::Tracer;

/// Current `BENCH_*.json` schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Top-level sections that hold wall-clock measurements and are skipped
/// by [`deterministic_view`].
pub const NONDETERMINISTIC_SECTIONS: &[&str] = &["quantiles", "spans"];

/// Builder/writer for one bench run's report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    bench: String,
    config: Vec<(String, Value)>,
    results: Vec<(String, Value)>,
    counters: Vec<(String, Value)>,
    quantiles: Vec<(String, Value)>,
    spans: Vec<(String, Value)>,
}

impl BenchReport {
    /// An empty report for the bench named `bench`.
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            config: Vec::new(),
            results: Vec::new(),
            counters: Vec::new(),
            quantiles: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn upsert(section: &mut Vec<(String, Value)>, key: &str, value: Value) {
        match section.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => section.push((key.to_string(), value)),
        }
    }

    /// Records one run parameter (deterministic section).
    pub fn set_config(&mut self, key: &str, value: impl Serialize) -> &mut Self {
        Self::upsert(&mut self.config, key, value.to_value());
        self
    }

    /// Records one result (deterministic section).
    pub fn set_result(&mut self, key: &str, value: impl Serialize) -> &mut Self {
        Self::upsert(&mut self.results, key, value.to_value());
        self
    }

    /// Records every counter that grew between two registry snapshots
    /// (deterministic section; zero deltas are omitted).
    pub fn set_counter_deltas(
        &mut self,
        after: &MetricsSnapshot,
        before: &MetricsSnapshot,
    ) -> &mut Self {
        for c in &after.counters {
            let delta = c.value.saturating_sub(before.counter(&c.name).unwrap_or(0));
            if delta > 0 {
                Self::upsert(&mut self.counters, &c.name, Value::U64(delta));
            }
        }
        self
    }

    /// Records one counter value directly (deterministic section).
    pub fn set_counter(&mut self, name: &str, value: u64) -> &mut Self {
        Self::upsert(&mut self.counters, name, Value::U64(value));
        self
    }

    /// Records a latency distribution's count/mean/p50/p95/p99 under
    /// `label` (wall-clock section, excluded from double-run diffs).
    pub fn set_quantiles(&mut self, label: &str, hist: &HistogramSnapshot) -> &mut Self {
        let row = Value::Object(vec![
            ("count".to_string(), Value::U64(hist.count)),
            ("mean".to_string(), Value::F64(hist.mean())),
            ("p50".to_string(), Value::F64(hist.quantile(0.50))),
            ("p95".to_string(), Value::F64(hist.quantile(0.95))),
            ("p99".to_string(), Value::F64(hist.quantile(0.99))),
        ]);
        Self::upsert(&mut self.quantiles, label, row);
        self
    }

    /// Records the most recent duration of every span the tracer
    /// retains whose name starts with `prefix` (wall-clock section).
    pub fn set_span_timings(&mut self, tracer: &Tracer, prefix: &str) -> &mut Self {
        for event in tracer.events() {
            if let Some(ns) = event.duration_ns {
                if event.name.starts_with(prefix) {
                    Self::upsert(&mut self.spans, &event.name, Value::U64(ns));
                }
            }
        }
        self
    }

    /// Records one named timing in nanoseconds (wall-clock section).
    pub fn set_span(&mut self, name: &str, duration_ns: u64) -> &mut Self {
        Self::upsert(&mut self.spans, name, Value::U64(duration_ns));
        self
    }

    /// The report as a schema-valid JSON value.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema_version".to_string(), Value::U64(SCHEMA_VERSION)),
            ("bench".to_string(), Value::Str(self.bench.clone())),
            ("config".to_string(), Value::Object(self.config.clone())),
            ("results".to_string(), Value::Object(self.results.clone())),
            ("counters".to_string(), Value::Object(self.counters.clone())),
            ("quantiles".to_string(), Value::Object(self.quantiles.clone())),
            ("spans".to_string(), Value::Object(self.spans.clone())),
        ])
    }

    /// Serializes the report (insertion-ordered keys, so byte output is
    /// deterministic given deterministic construction).
    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_vec(&self.to_value()).expect("report contains no non-finite floats")
    }

    /// Writes the report to `path` atomically (write-then-rename, with a
    /// trailing newline).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut bytes = self.to_json();
        bytes.push(b'\n');
        let tmp = path.with_extension("json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Writes `BENCH_<name>.json` into `RC_REPORT_DIR` (default: the
    /// current directory, i.e. the repo root under `cargo run`), and
    /// returns the path.
    pub fn write_default(&self, file_name: &str) -> std::io::Result<PathBuf> {
        let dir = std::env::var("RC_REPORT_DIR").unwrap_or_else(|_| ".".to_string());
        std::fs::create_dir_all(&dir)?;
        let path = Path::new(&dir).join(file_name);
        self.write_to(&path)?;
        Ok(path)
    }
}

fn section<'v>(value: &'v Value, key: &str) -> Result<&'v Value, String> {
    let obj = value.as_object().ok_or_else(|| "report is not a JSON object".to_string())?;
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing section `{key}`"))
}

/// Validates a parsed report against the schema: version match, a
/// non-empty bench name, and all five sections present as objects with
/// counter values that are unsigned integers.
pub fn validate(value: &Value) -> Result<(), String> {
    let version = section(value, "schema_version")?
        .as_u64()
        .ok_or_else(|| "schema_version is not an unsigned integer".to_string())?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version}, expected {SCHEMA_VERSION}"));
    }
    let bench =
        section(value, "bench")?.as_str().ok_or_else(|| "bench is not a string".to_string())?;
    if bench.is_empty() {
        return Err("bench name is empty".to_string());
    }
    for name in ["config", "results", "counters", "quantiles", "spans"] {
        section(value, name)?
            .as_object()
            .ok_or_else(|| format!("section `{name}` is not an object"))?;
    }
    for (k, v) in section(value, "counters")?.as_object().expect("checked above") {
        if v.as_u64().is_none() {
            return Err(format!("counter `{k}` is not an unsigned integer"));
        }
    }
    for (label, row) in section(value, "quantiles")?.as_object().expect("checked above") {
        let fields =
            row.as_object().ok_or_else(|| format!("quantile row `{label}` is not an object"))?;
        for want in ["count", "mean", "p50", "p95", "p99"] {
            if !fields.iter().any(|(k, _)| k == want) {
                return Err(format!("quantile row `{label}` is missing `{want}`"));
            }
        }
    }
    Ok(())
}

/// The report with its wall-clock sections
/// ([`NONDETERMINISTIC_SECTIONS`]) removed — the part of the document
/// that must be byte-identical across a double run.
pub fn deterministic_view(value: &Value) -> Value {
    match value.as_object() {
        Some(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| !NONDETERMINISTIC_SECTIONS.contains(&k.as_str()))
                .cloned()
                .collect(),
        ),
        None => value.clone(),
    }
}

/// Reads and parses a report file.
pub fn read_report(path: &Path) -> Result<Value, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("{}: {e:?}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> BenchReport {
        let reg = Registry::new();
        let before = reg.snapshot();
        reg.counter("rc_test_ops").add(41);
        let h = reg.histogram("rc_test_latency_ns");
        h.record(120);
        h.record(950);
        let after = reg.snapshot();
        let mut report = BenchReport::new("unit");
        report
            .set_config("scale", 0.05)
            .set_result("failures", 3u64)
            .set_counter_deltas(&after, &before)
            .set_quantiles("latency_ns", after.histogram("rc_test_latency_ns").unwrap())
            .set_span("phase.run", 12_345);
        report
    }

    #[test]
    fn report_round_trips_and_validates() {
        let report = sample();
        let bytes = report.to_json();
        let value: Value = serde_json::from_slice(&bytes).expect("parses");
        validate(&value).expect("schema-valid");
        let counters = section(&value, "counters").unwrap().as_object().unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].0, "rc_test_ops");
        assert_eq!(counters[0].1.as_u64(), Some(41));
    }

    #[test]
    fn validate_rejects_bad_documents() {
        let report = sample().to_value();
        // Wrong version.
        let mut wrong = report.as_object().unwrap().to_vec();
        wrong[0].1 = Value::U64(99);
        assert!(validate(&Value::Object(wrong)).unwrap_err().contains("schema_version"));
        // Missing section.
        let missing: Vec<(String, Value)> =
            report.as_object().unwrap().iter().filter(|(k, _)| k != "counters").cloned().collect();
        assert!(validate(&Value::Object(missing)).unwrap_err().contains("counters"));
        // Non-integer counter.
        let mut bad = sample();
        bad.counters.push(("oops".to_string(), Value::F64(1.5)));
        assert!(validate(&bad.to_value()).unwrap_err().contains("oops"));
    }

    #[test]
    fn deterministic_view_drops_only_wall_clock_sections() {
        let value = sample().to_value();
        let det = deterministic_view(&value);
        let keys: Vec<&str> = det.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["schema_version", "bench", "config", "results", "counters"]);
        // Two runs differing only in timings agree on the view.
        let mut other = sample();
        other.set_span("phase.run", 999_999);
        other.set_quantiles(
            "latency_ns",
            &HistogramSnapshot { name: "x".into(), count: 0, sum: 0, buckets: vec![] },
        );
        assert_eq!(
            serde_json::to_vec(&det).unwrap(),
            serde_json::to_vec(&deterministic_view(&other.to_value())).unwrap()
        );
    }

    #[test]
    fn write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("rc_report_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_unit.json");
        sample().write_to(&path).unwrap();
        let value = read_report(&path).unwrap();
        validate(&value).expect("schema-valid");
        std::fs::remove_dir_all(&dir).ok();
    }
}
