//! Canonical metric names.
//!
//! Every layer registers through these constants so bench binaries and
//! the README catalog never drift from the instrumented code. Naming
//! follows Prometheus conventions: `rc_<layer>_<what>[_<unit>]`,
//! histograms in nanoseconds suffixed `_ns`.

// --- rc-core client (predict path) ---

/// Predict-path latency when served from the result cache (histogram, ns).
pub const CLIENT_PREDICT_HIT_LATENCY_NS: &str = "rc_client_predict_hit_latency_ns";
/// Predict-path latency on a result-cache miss, including model
/// execution and any store traffic (histogram, ns).
pub const CLIENT_PREDICT_MISS_LATENCY_NS: &str = "rc_client_predict_miss_latency_ns";
/// Result-cache hits (counter).
pub const CLIENT_RESULT_CACHE_HITS: &str = "rc_client_result_cache_hits";
/// Result-cache misses (counter).
pub const CLIENT_RESULT_CACHE_MISSES: &str = "rc_client_result_cache_misses";
/// Result-cache insertions (counter).
pub const CLIENT_RESULT_CACHE_INSERTIONS: &str = "rc_client_result_cache_insertions";
/// Result-cache evictions (counter).
pub const CLIENT_RESULT_CACHE_EVICTIONS: &str = "rc_client_result_cache_evictions";
/// Model-cache hits: predict calls served by an already-resident model
/// (counter).
pub const CLIENT_MODEL_CACHE_HITS: &str = "rc_client_model_cache_hits";
/// Model-cache misses: model had to be fetched before predicting
/// (counter).
pub const CLIENT_MODEL_CACHE_MISSES: &str = "rc_client_model_cache_misses";
/// Feature-cache hits: the subscription's feature record was resident
/// (counter).
pub const CLIENT_FEATURE_CACHE_HITS: &str = "rc_client_feature_cache_hits";
/// Feature-cache misses: no feature record for the subscription
/// (counter).
pub const CLIENT_FEATURE_CACHE_MISSES: &str = "rc_client_feature_cache_misses";
/// Synchronous store pulls taken when a model was absent in Pull mode
/// (counter).
pub const CLIENT_STORE_FALLBACKS: &str = "rc_client_store_fallbacks";
/// Models recovered from the on-disk cache while the store was
/// unavailable (counter).
pub const CLIENT_DISK_CACHE_RECOVERIES: &str = "rc_client_disk_cache_recoveries";
/// Predict calls answered with "no prediction" (counter).
pub const CLIENT_NO_PREDICTIONS: &str = "rc_client_no_predictions";
/// Model executions — result-cache misses that ran a model (counter).
pub const CLIENT_MODEL_EXECS: &str = "rc_client_model_execs";
/// Background model refreshes applied by pull/push workers (counter).
pub const CLIENT_BACKGROUND_REFRESHES: &str = "rc_client_background_refreshes";

// --- rc-core pipeline (offline training) ---

/// Completed pipeline runs (counter).
pub const PIPELINE_RUNS: &str = "rc_pipeline_runs";
/// Wall time of one full pipeline run (histogram, ns).
pub const PIPELINE_RUN_LATENCY_NS: &str = "rc_pipeline_run_latency_ns";
/// Per-model training wall time across all metrics (histogram, ns).
pub const PIPELINE_TRAIN_LATENCY_NS: &str = "rc_pipeline_train_latency_ns";
/// Models trained (counter).
pub const PIPELINE_MODELS_TRAINED: &str = "rc_pipeline_models_trained";
/// Models that passed validation and were published (counter).
pub const PIPELINE_MODELS_PUBLISHED: &str = "rc_pipeline_models_published";
/// Weekly feature refreshes generated (counter).
pub const PIPELINE_FEATURE_REFRESHES: &str = "rc_pipeline_feature_refreshes";

// --- rc-store ---

/// Store `get` wall time including simulated network latency
/// (histogram, ns).
pub const STORE_GET_LATENCY_NS: &str = "rc_store_get_latency_ns";
/// Store `put` wall time including simulated network latency
/// (histogram, ns).
pub const STORE_PUT_LATENCY_NS: &str = "rc_store_put_latency_ns";
/// Successful gets (counter).
pub const STORE_GETS: &str = "rc_store_gets";
/// Successful puts (counter).
pub const STORE_PUTS: &str = "rc_store_puts";
/// Operations rejected while the store was unavailable (counter).
pub const STORE_UNAVAILABLE: &str = "rc_store_unavailable_errors";
/// Puts that superseded an existing version — version bumps (counter).
pub const STORE_VERSION_BUMPS: &str = "rc_store_version_bumps";

// --- rc-scheduler ---

/// VMs successfully placed (counter).
pub const SCHED_PLACEMENTS: &str = "rc_sched_placements";
/// Placement failures — no server admitted the VM (counter).
pub const SCHED_FAILURES: &str = "rc_sched_failures";
/// Soft-rule relaxations: the grouped rule chain fell back to
/// ignoring the utilization cap (counter).
pub const SCHED_RULE_RELAXATIONS: &str = "rc_sched_rule_relaxations";
/// Candidate servers rejected by Algorithm 1's predicted-utilization
/// cap (counter).
pub const SCHED_UTIL_CAP_REJECTIONS: &str = "rc_sched_util_cap_rejections";
/// Utilization readings observed at or above 100% of physical cores
/// (counter).
pub const SCHED_OVERLOADED_READINGS: &str = "rc_sched_overloaded_readings";
/// All utilization readings sampled by the simulator (counter).
pub const SCHED_READINGS: &str = "rc_sched_readings";
