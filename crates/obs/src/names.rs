//! Canonical metric names.
//!
//! Every layer registers through these constants so bench binaries and
//! the README catalog never drift from the instrumented code. Naming
//! follows Prometheus conventions: `rc_<layer>_<what>[_<unit>]`,
//! histograms in nanoseconds suffixed `_ns`.

// --- rc-core client (predict path) ---

/// Predict-path latency when served from the result cache (histogram, ns).
pub const CLIENT_PREDICT_HIT_LATENCY_NS: &str = "rc_client_predict_hit_latency_ns";
/// Predict-path latency on a result-cache miss, including model
/// execution and any store traffic (histogram, ns).
pub const CLIENT_PREDICT_MISS_LATENCY_NS: &str = "rc_client_predict_miss_latency_ns";
/// Result-cache hits (counter).
pub const CLIENT_RESULT_CACHE_HITS: &str = "rc_client_result_cache_hits";
/// Result-cache misses (counter).
pub const CLIENT_RESULT_CACHE_MISSES: &str = "rc_client_result_cache_misses";
/// Result-cache insertions (counter).
pub const CLIENT_RESULT_CACHE_INSERTIONS: &str = "rc_client_result_cache_insertions";
/// Result-cache evictions (counter).
pub const CLIENT_RESULT_CACHE_EVICTIONS: &str = "rc_client_result_cache_evictions";
/// Model-cache hits: predict calls served by an already-resident model
/// (counter).
pub const CLIENT_MODEL_CACHE_HITS: &str = "rc_client_model_cache_hits";
/// Model-cache misses: model had to be fetched before predicting
/// (counter).
pub const CLIENT_MODEL_CACHE_MISSES: &str = "rc_client_model_cache_misses";
/// Feature-cache hits: the subscription's feature record was resident
/// (counter).
pub const CLIENT_FEATURE_CACHE_HITS: &str = "rc_client_feature_cache_hits";
/// Feature-cache misses: no feature record for the subscription
/// (counter).
pub const CLIENT_FEATURE_CACHE_MISSES: &str = "rc_client_feature_cache_misses";
/// Pull-mode model fetches whose store pull failed and fell back to the
/// local disk cache (counter). Successful store pulls do not count.
pub const CLIENT_STORE_FALLBACKS: &str = "rc_client_store_fallbacks";
/// Models recovered from the on-disk cache while the store was
/// unavailable (counter).
pub const CLIENT_DISK_CACHE_RECOVERIES: &str = "rc_client_disk_cache_recoveries";
/// Predict calls answered with "no prediction" (counter).
pub const CLIENT_NO_PREDICTIONS: &str = "rc_client_no_predictions";
/// Model executions — result-cache misses that ran a model (counter).
pub const CLIENT_MODEL_EXECS: &str = "rc_client_model_execs";
/// Background model refreshes applied by pull/push workers (counter).
pub const CLIENT_BACKGROUND_REFRESHES: &str = "rc_client_background_refreshes";
/// Number of result-cache shards the most recently built client uses
/// (gauge).
pub const CLIENT_RESULT_CACHE_SHARDS: &str = "rc_client_result_cache_shards";
/// `predict_many` calls that took the shard-grouped batch path (counter).
pub const CLIENT_BATCH_PREDICTS: &str = "rc_client_batch_predicts";
/// Model executions avoided because a batch deduplicated identical missed
/// keys (counter).
pub const CLIENT_BATCH_DEDUPED_EXECS: &str = "rc_client_batch_deduped_execs";
/// Background worker threads (pull worker, push watcher) started
/// (counter).
pub const CLIENT_WORKERS_STARTED: &str = "rc_client_workers_started";
/// Background worker threads that observed shutdown and exited (counter).
pub const CLIENT_WORKERS_STOPPED: &str = "rc_client_workers_stopped";
/// Lookups answered with a concrete predicted bucket — every
/// `Predicted` response, cached or freshly executed (counter).
/// Reconciles: `predictions == lookups - no_predictions`.
pub const CLIENT_PREDICTIONS: &str = "rc_client_predictions";
/// Predict calls currently executing, across all threads (gauge).
pub const CLIENT_INFLIGHT: &str = "rc_client_inflight";
/// Predict lookups over the rolling window (windowed counter; epochs
/// are whatever drives `Registry::tick`).
pub const CLIENT_LOOKUPS_WINDOWED: &str = "rc_client_lookups_windowed";
/// Predict-path latency over the rolling window, hits and misses
/// together (windowed histogram, ns).
pub const CLIENT_PREDICT_LATENCY_WINDOWED_NS: &str = "rc_client_predict_latency_windowed_ns";

// --- rc-core client (lock-free serve path) ---

/// Serve-snapshot publishes: each model/manifest/feature/stale-set
/// change builds a new immutable snapshot and stores it with one atomic
/// swap (counter).
pub const CLIENT_SERVE_SNAPSHOT_PUBLISHES: &str = "rc_client_serve_snapshot_publishes";
/// Generation number of the currently published serve snapshot (gauge).
pub const CLIENT_SERVE_SNAPSHOT_GENERATION: &str = "rc_client_serve_snapshot_generation";
/// Retired serve snapshots awaiting their epoch grace period before
/// reclamation (gauge).
pub const CLIENT_SERVE_SNAPSHOT_RETIRED: &str = "rc_client_serve_snapshot_retired";
/// Pull-mode refresh keys admitted into the bounded admission queue
/// (counter).
pub const CLIENT_ADMISSION_ENQUEUED: &str = "rc_client_serve_admission_enqueued";
/// Refresh keys coalesced because an identical key was already in
/// flight — the thundering-herd dedup (counter).
pub const CLIENT_ADMISSION_COALESCED: &str = "rc_client_serve_admission_coalesced";
/// Refresh keys dropped because the admission queue was full —
/// backpressure; the caller still gets its degraded answer (counter).
pub const CLIENT_ADMISSION_REJECTED: &str = "rc_client_serve_admission_rejected";

// --- rc-core client (resilience layer) ---

/// Predict lookups — every `predict_single` call and every element of a
/// `predict_many` batch (counter). Reconciles exactly:
/// `lookups == result_cache_hits + fresh_fetches + stale_serves + defaults`.
pub const CLIENT_LOOKUPS: &str = "rc_client_lookups";
/// Lookups resolved by executing a model against *fresh* data — data
/// loaded from the store, or from a disk-cache entry still inside its
/// expiry (counter).
pub const CLIENT_FRESH_FETCHES: &str = "rc_client_fresh_fetches";
/// Lookups resolved by executing a model against *stale* data — a
/// disk-cache entry past its expiry but inside the stale-grace window
/// (counter).
pub const CLIENT_STALE_SERVES: &str = "rc_client_stale_serves";
/// Lookups that degraded to the no-prediction default (counter).
pub const CLIENT_DEFAULTS: &str = "rc_client_defaults";
/// Store-pull retry attempts beyond each call's first try (counter).
pub const CLIENT_RETRIES: &str = "rc_client_retries";
/// Circuit-breaker state transitions (Closed→Open, Open→HalfOpen,
/// HalfOpen→Closed, HalfOpen→Open) across all keys (counter).
pub const CLIENT_BREAKER_TRANSITIONS: &str = "rc_client_breaker_transitions";
/// Per-key circuit breakers currently in the Open state (gauge).
pub const CLIENT_BREAKER_OPEN: &str = "rc_client_breaker_open";
/// HalfOpen probe admissions — calls let through an Open or HalfOpen
/// breaker to test recovery; their outcomes drive HalfOpen→Closed /
/// HalfOpen→Open transitions (counter).
pub const CLIENT_BREAKER_HALF_OPEN_PROBES: &str = "rc_client_breaker_half_open_probes";
/// Payloads (store pulls or disk-cache entries) that failed checksum or
/// decode validation and were skipped instead of served (counter).
pub const CLIENT_CORRUPT_PAYLOADS: &str = "rc_client_corrupt_payloads";
/// Fetched models rejected by the pre-swap sanity check (undecodable,
/// checksum/identity mismatch with the manifest, or non-finite probe
/// outputs); the previously resident model keeps serving (counter).
pub const CLIENT_MODEL_REJECTED: &str = "rc_client_model_rejected";

// --- rc-core pipeline (offline training) ---

/// Completed pipeline runs (counter).
pub const PIPELINE_RUNS: &str = "rc_pipeline_runs";
/// Wall time of one full pipeline run (histogram, ns).
pub const PIPELINE_RUN_LATENCY_NS: &str = "rc_pipeline_run_latency_ns";
/// Per-model training wall time across all metrics (histogram, ns).
pub const PIPELINE_TRAIN_LATENCY_NS: &str = "rc_pipeline_train_latency_ns";
/// Models trained (counter).
pub const PIPELINE_MODELS_TRAINED: &str = "rc_pipeline_models_trained";
/// Models that passed validation and were published (counter).
pub const PIPELINE_MODELS_PUBLISHED: &str = "rc_pipeline_models_published";
/// Weekly feature refreshes generated (counter).
pub const PIPELINE_FEATURE_REFRESHES: &str = "rc_pipeline_feature_refreshes";
/// Worker threads the last pipeline run used to train the six per-metric
/// models concurrently (gauge).
pub const PIPELINE_TRAIN_WORKERS: &str = "rc_pipeline_train_workers";
/// Raw records (VMs + deployments) the extract stage pulled from
/// telemetry (counter). Reconciles exactly:
/// `extracted == cleaned + quarantined`.
pub const PIPELINE_EXTRACTED_RECORDS: &str = "rc_pipeline_extracted_records";
/// Records that passed the cleanup stage into aggregation (counter).
pub const PIPELINE_CLEANED_RECORDS: &str = "rc_pipeline_cleaned_records";
/// Records the cleanup stage quarantined, all categories (counter).
pub const PIPELINE_QUARANTINED_RECORDS: &str = "rc_pipeline_quarantined_records";
/// Quarantined: duplicated VM records — a vm_id already ingested
/// (counter).
pub const PIPELINE_QUARANTINED_DUPLICATES: &str = "rc_pipeline_quarantined_duplicates";
/// Quarantined: NaN or out-of-range utilization parameters (counter).
pub const PIPELINE_QUARANTINED_INVALID_UTIL: &str = "rc_pipeline_quarantined_invalid_util";
/// Quarantined: clock-skewed timestamps — deletion before creation
/// (counter).
pub const PIPELINE_QUARANTINED_CLOCK_SKEW: &str = "rc_pipeline_quarantined_clock_skew";
/// Quarantined: truncated VM records with zeroed/sentinel fields
/// (counter).
pub const PIPELINE_QUARANTINED_TRUNCATED: &str = "rc_pipeline_quarantined_truncated";
/// Quarantined: VM records whose deployment id points past the deployment
/// table (counter).
pub const PIPELINE_QUARANTINED_ORPHANED: &str = "rc_pipeline_quarantined_orphaned";
/// Metrics whose train/validate task panicked or failed and were excluded
/// from publication while the rest proceeded (counter).
pub const PIPELINE_METRIC_QUARANTINED: &str = "rc_pipeline_metric_quarantined";
/// Publishes refused by the validation gate — accuracy floor or
/// regression versus the currently published version (counter).
pub const PIPELINE_PUBLISH_BLOCKED: &str = "rc_pipeline_publish_blocked";
/// Manifest rollbacks to `last_good` (counter).
pub const PIPELINE_ROLLBACKS: &str = "rc_pipeline_rollbacks";
/// Manifest flips abandoned because a concurrent writer moved the
/// pointer between the gate read and the flip (counter).
pub const PIPELINE_PUBLISH_RACES: &str = "rc_pipeline_publish_races";

// --- rc-ml worker pool ---

/// Scoped pool invocations — one per parallel fit or train fan-out
/// (counter).
pub const ML_POOL_SCOPES: &str = "rc_ml_pool_scopes";
/// Tasks dispatched through the scoped pool (counter).
pub const ML_POOL_TASKS: &str = "rc_ml_pool_tasks";
/// Worker threads spawned by the scoped pool across all scopes (counter).
pub const ML_POOL_WORKERS_SPAWNED: &str = "rc_ml_pool_workers_spawned";

// --- rc-store ---

/// Store `get` wall time including simulated network latency
/// (histogram, ns).
pub const STORE_GET_LATENCY_NS: &str = "rc_store_get_latency_ns";
/// Store `put` wall time including simulated network latency
/// (histogram, ns).
pub const STORE_PUT_LATENCY_NS: &str = "rc_store_put_latency_ns";
/// Successful gets (counter).
pub const STORE_GETS: &str = "rc_store_gets";
/// Successful puts (counter).
pub const STORE_PUTS: &str = "rc_store_puts";
/// Operations rejected while the store was unavailable (counter).
pub const STORE_UNAVAILABLE: &str = "rc_store_unavailable_errors";
/// Puts that superseded an existing version — version bumps (counter).
pub const STORE_VERSION_BUMPS: &str = "rc_store_version_bumps";
/// Faults injected by a `FaultyStore` wrapper, all kinds (counter).
pub const STORE_INJECTED_FAULTS: &str = "rc_store_injected_faults";
/// Injected per-op unavailability errors (counter).
pub const STORE_INJECTED_UNAVAILABILITY: &str = "rc_store_injected_unavailability";
/// Injected transient errors, including burst continuations (counter).
pub const STORE_INJECTED_TRANSIENTS: &str = "rc_store_injected_transients";
/// Injected latency spikes (counter).
pub const STORE_INJECTED_LATENCY_SPIKES: &str = "rc_store_injected_latency_spikes";
/// Injected payload corruptions on GETs (counter).
pub const STORE_INJECTED_CORRUPTIONS: &str = "rc_store_injected_corruptions";

// --- rc-scheduler ---

/// VMs successfully placed (counter).
pub const SCHED_PLACEMENTS: &str = "rc_sched_placements";
/// Placement failures — no server admitted the VM (counter).
pub const SCHED_FAILURES: &str = "rc_sched_failures";
/// Soft-rule relaxations: the grouped rule chain fell back to
/// ignoring the utilization cap (counter).
pub const SCHED_RULE_RELAXATIONS: &str = "rc_sched_rule_relaxations";
/// Candidate servers rejected by Algorithm 1's predicted-utilization
/// cap (counter).
pub const SCHED_UTIL_CAP_REJECTIONS: &str = "rc_sched_util_cap_rejections";
/// Utilization readings observed at or above 100% of physical cores
/// (counter).
pub const SCHED_OVERLOADED_READINGS: &str = "rc_sched_overloaded_readings";
/// All utilization readings sampled by the simulator (counter).
pub const SCHED_READINGS: &str = "rc_sched_readings";
/// Placements over the rolling window (windowed counter; the simulator
/// ticks it once per `obs_tick_secs` of simulated time).
pub const SCHED_PLACEMENTS_WINDOWED: &str = "rc_sched_placements_windowed";
/// Overloaded (≥100%) readings over the rolling window (windowed
/// counter).
pub const SCHED_OVERLOADED_WINDOWED: &str = "rc_sched_overloaded_readings_windowed";

// --- rc-loop lifecycle controller ---

/// Controller ticks completed (counter).
pub const LOOP_TICKS: &str = "rc_loop_ticks";
/// Telemetry windows ingested, clean or dirty (counter).
pub const LOOP_WINDOWS_INGESTED: &str = "rc_loop_windows_ingested";
/// Retrains started — drift-triggered, cadence-triggered, or bootstrap
/// (counter).
pub const LOOP_RETRAINS: &str = "rc_loop_retrains";
/// Retrains that failed outright (insufficient surviving data, store
/// down) and degraded their tick (counter).
pub const LOOP_RETRAIN_FAILURES: &str = "rc_loop_retrain_failures";
/// Shadow evaluations of a candidate against the serving model
/// (counter).
pub const LOOP_SHADOW_EVALS: &str = "rc_loop_shadow_evals";
/// Candidates the shadow evaluation rejected — the store stays
/// byte-untouched (counter).
pub const LOOP_SHADOW_REJECTIONS: &str = "rc_loop_shadow_rejections";
/// Manifest flips: candidates that won shadow and passed the publish
/// gate (counter).
pub const LOOP_PROMOTIONS: &str = "rc_loop_promotions";
/// Post-flip regressions that auto-rolled the manifest back to
/// `last_good` (counter).
pub const LOOP_ROLLBACKS: &str = "rc_loop_rollbacks";
/// Promotions refused because the candidate's model set matched a
/// quarantined publication (counter).
pub const LOOP_QUARANTINE_BLOCKED: &str = "rc_loop_quarantine_blocked";
/// Ticks degraded by chaos — dirty windows starving the pipeline, store
/// outages mid-flip, failed serving reloads. Each costs exactly its own
/// tick (counter).
pub const LOOP_DEGRADED_TICKS: &str = "rc_loop_degraded_ticks";
/// Manifest version currently serving, 0 before the first publication
/// (gauge).
pub const LOOP_SERVING_VERSION: &str = "rc_loop_serving_version";
/// Shadow accuracy of the latest candidate, per metric (gauge family;
/// names built with `rc_obs::acc_gauge_name`).
pub const LOOP_SHADOW_ACCURACY: &str = "rc_loop_shadow_accuracy";
/// PSI divergence of the latest ingested window's feature distribution
/// versus the serving model's training baseline, per feature (gauge
/// family; names built with `rc_obs::feature_gauge_name`).
pub const LOOP_LEADING_PSI: &str = "rc_loop_leading_psi";
/// Leading-drift signal: 1.0 while a feature's distribution is tripped,
/// 0.0 while stable (gauge family; `rc_obs::feature_gauge_name`).
pub const LOOP_LEADING_DRIFT: &str = "rc_loop_leading_drift";
/// Leading-drift trips — Stable→Drifting transitions of any feature's
/// distribution signal (counter).
pub const LOOP_LEADING_TRIPS: &str = "rc_loop_leading_trips";
/// PSI divergence between the serving and candidate models' predicted
/// bucket distributions over the shadow slice, per metric (gauge
/// family; names built with `rc_obs::acc_gauge_name`).
pub const LOOP_SHADOW_PREDICTION_PSI: &str = "rc_loop_shadow_prediction_psi";
/// Publishes abandoned because a concurrent manual publish raced the
/// controller's manifest flip (counter).
pub const LOOP_PUBLISH_RACES: &str = "rc_loop_publish_races";
/// Chaos faults the controller observed landing on its tick — brownout,
/// telemetry degradation, clock skew, manual publish (counter).
pub const LOOP_CHAOS_INJECTED: &str = "rc_loop_chaos_injected";

// --- prediction accuracy (AccuracyTracker gauge families) ---
//
// These families carry a `{metric="..."}` label embedded in the flat
// registry name; build full names with `rc_obs::acc_gauge_name` /
// `rc_obs::acc_confusion_name`.

/// Rolling accuracy over the live window, per metric (gauge family).
pub const ACC_ROLLING: &str = "rc_acc_rolling";
/// Cumulative accuracy over all resolved outcomes, per metric (gauge
/// family).
pub const ACC_CUMULATIVE: &str = "rc_acc_cumulative";
/// Drift signal: 1.0 while `Drifting`, 0.0 while `Stable` (gauge
/// family).
pub const ACC_DRIFT: &str = "rc_acc_drift";
/// Training-time accuracy baseline from the published manifest (gauge
/// family).
pub const ACC_BASELINE: &str = "rc_acc_baseline";
/// Confusion-matrix cells, labelled `p` (predicted) and `o` (observed)
/// (gauge family).
pub const ACC_CONFUSION: &str = "rc_acc_confusion";
/// Drift-signal transitions in either direction (Stable→Drifting and
/// Drifting→Stable), across all metrics (counter). Each metric's
/// per-direction counts reconcile against this total.
pub const ACC_DRIFT_TRANSITIONS: &str = "rc_acc_drift_transitions";
