//! Prediction sources and the scheduling policies of §6.2.
//!
//! The comparison in the paper needs six schedulers: Baseline (no
//! oversubscription), Naive (oversubscription without predictions),
//! RC-informed with the utilization check as a soft or hard rule, and two
//! prediction-quality endpoints (always-right, always-wrong). The policy
//! picks the rule behaviour; a [`P95Source`] supplies the predictions.

use rc_core::{ClientHealth, PredictionResponse, RcClient};
use rc_types::metrics::PredictionMetric;

use crate::request::VmRequest;

/// Supplies 95th-percentile utilization-bucket predictions.
pub trait P95Source: Send + Sync {
    /// Predicted `(bucket, confidence)` for the VM, or `None` when no
    /// prediction is available.
    fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)>;
}

/// Predictions served by a live Resource Central client — the production
/// path (Algorithm 1 line 9: `predict_single(VM_P95UTIL, ...)`).
pub struct RcSource {
    client: RcClient,
}

impl RcSource {
    /// Wraps an initialized client.
    pub fn new(client: RcClient) -> Self {
        RcSource { client }
    }

    /// Read access to the wrapped client (for cache statistics).
    pub fn client(&self) -> &RcClient {
        &self.client
    }
}

impl P95Source for RcSource {
    fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)> {
        // §4.3: an Offline client answers the default for everything;
        // skip the lookup entirely so Algorithm 1 degrades to its
        // conservative no-prediction path (assume 100% utilization)
        // exactly as it would with no prediction source at all.
        if self.client.health() == ClientHealth::Offline {
            return None;
        }
        match self.client.predict_single(PredictionMetric::P95MaxCpuUtil.model_name(), &req.inputs)
        {
            PredictionResponse::Predicted(p) => Some((p.value, p.score)),
            PredictionResponse::NoPrediction => None,
        }
    }
}

/// Oracle: always the true bucket, full confidence (RC-soft-right).
pub struct OracleSource;

impl P95Source for OracleSource {
    fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)> {
        Some((req.true_p95_bucket, 1.0))
    }
}

/// Adversary: always an incorrect random bucket, full confidence
/// (RC-soft-wrong).
pub struct WrongSource;

impl P95Source for WrongSource {
    fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)> {
        // Deterministic "random" wrong bucket derived from the VM id.
        let h = req.vm_id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33;
        let offset = 1 + (h % 3) as usize;
        Some(((req.true_p95_bucket + offset) % 4, 1.0))
    }
}

/// No predictions at all; RC-informed policies degrade to assuming full
/// allocation for every VM.
pub struct NoSource;

impl P95Source for NoSource {
    fn predict_p95(&self, _req: &VmRequest) -> Option<(usize, f64)> {
        None
    }
}

/// The §6.2 scheduler variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No oversubscription, no production/non-production split.
    Baseline,
    /// Oversubscription by allocation only; no utilization check.
    NaiveOversub,
    /// Algorithm 1 with the utilization check as a soft rule.
    RcInformedSoft,
    /// Algorithm 1 with the utilization check inside the hard fit rule.
    RcInformedHard,
}

impl PolicyKind {
    /// Display label matching the paper's terminology.
    pub const fn label(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline",
            PolicyKind::NaiveOversub => "Naive",
            PolicyKind::RcInformedSoft => "RC-informed-soft",
            PolicyKind::RcInformedHard => "RC-informed-hard",
        }
    }

    /// True when the policy oversubscribes CPU at all.
    pub const fn oversubscribes(self) -> bool {
        !matches!(self, PolicyKind::Baseline)
    }

    /// True when the policy consults P95 predictions.
    pub const fn uses_predictions(self) -> bool {
        matches!(self, PolicyKind::RcInformedSoft | PolicyKind::RcInformedHard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::ClientInputs;
    use rc_trace::UtilParams;
    use rc_types::time::Timestamp;
    use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmId, VmRole};

    fn request(id: u64, bucket: usize) -> VmRequest {
        VmRequest {
            vm_id: VmId(id),
            cores: 2,
            memory_gb: 3.5,
            prod: ProdTag::NonProduction,
            created: Timestamp::ZERO,
            deleted: Timestamp::from_hours(1),
            util: UtilParams::creation_test(id),
            inputs: ClientInputs {
                subscription: SubscriptionId(0),
                party: Party::First,
                role: VmRole::Iaas,
                prod: ProdTag::NonProduction,
                os: OsType::Linux,
                sku_index: 2,
                deployment_time: Timestamp::ZERO,
                deployment_size_hint: 1,
                service: None,
            },
            true_p95_bucket: bucket,
        }
    }

    #[test]
    fn oracle_is_always_right() {
        for b in 0..4 {
            let (pred, score) = OracleSource.predict_p95(&request(7, b)).unwrap();
            assert_eq!(pred, b);
            assert_eq!(score, 1.0);
        }
    }

    #[test]
    fn wrong_source_is_always_wrong() {
        for id in 0..100 {
            for b in 0..4 {
                let (pred, _) = WrongSource.predict_p95(&request(id, b)).unwrap();
                assert_ne!(pred, b, "vm {id} bucket {b}");
                assert!(pred < 4);
            }
        }
    }

    #[test]
    fn no_source_gives_nothing() {
        assert_eq!(NoSource.predict_p95(&request(1, 2)), None);
    }

    #[test]
    fn policy_flags() {
        assert!(!PolicyKind::Baseline.oversubscribes());
        assert!(PolicyKind::NaiveOversub.oversubscribes());
        assert!(!PolicyKind::NaiveOversub.uses_predictions());
        assert!(PolicyKind::RcInformedSoft.uses_predictions());
        assert!(PolicyKind::RcInformedHard.uses_predictions());
    }
}
