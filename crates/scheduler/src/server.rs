//! Server state and Algorithm 1's bookkeeping (PlaceVM / VMCompleted).

use rc_types::vm::ProdTag;

use crate::request::VmRequest;

/// Logical server grouping under the oversubscription scheme (§5): empty
/// servers take either kind of VM and are tagged by their first placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// No VMs placed; eligible for either group.
    Empty,
    /// Hosts only production workloads; never oversubscribed.
    NonOversubscribable,
    /// Hosts only non-production workloads; may be oversubscribed.
    Oversubscribable,
}

/// One physical server.
#[derive(Debug, Clone)]
pub struct Server {
    /// Physical core capacity (`SERVER_CAPACITY` in Algorithm 1).
    pub capacity_cores: f64,
    /// Physical memory capacity in GB.
    pub capacity_memory_gb: f64,
    /// Sum of resident VMs' core allocations (`c.alloc`).
    pub alloc_cores: f64,
    /// Sum of resident VMs' memory allocations.
    pub alloc_memory_gb: f64,
    /// Sum of resident VMs' predicted P95 utilizations in core units
    /// (`c.util`); tracked only on oversubscribable servers.
    pub predicted_util_cores: f64,
    /// Current grouping.
    pub kind: ServerKind,
    /// Resident VM count.
    pub n_vms: u32,
}

impl Server {
    /// A new, empty server.
    pub fn new(capacity_cores: f64, capacity_memory_gb: f64) -> Self {
        Server {
            capacity_cores,
            capacity_memory_gb,
            alloc_cores: 0.0,
            alloc_memory_gb: 0.0,
            predicted_util_cores: 0.0,
            kind: ServerKind::Empty,
            n_vms: 0,
        }
    }

    /// True when no VMs are resident (`c.alloc == 0` in Algorithm 1).
    pub fn is_empty(&self) -> bool {
        self.n_vms == 0
    }

    /// Algorithm 1, `PlaceVM`: tags an empty server by the VM's type, then
    /// adds the allocation (and predicted utilization when
    /// oversubscribable).
    pub fn place(&mut self, vm: &VmRequest, predicted_util_cores: f64) {
        if self.is_empty() {
            self.kind = match vm.prod {
                ProdTag::Production => ServerKind::NonOversubscribable,
                ProdTag::NonProduction => ServerKind::Oversubscribable,
            };
        }
        self.alloc_cores += vm.cores as f64;
        self.alloc_memory_gb += vm.memory_gb;
        self.n_vms += 1;
        if self.kind == ServerKind::Oversubscribable {
            self.predicted_util_cores += predicted_util_cores;
        }
    }

    /// Algorithm 1, `VMCompleted`: releases the allocation; an emptied
    /// server reverts to [`ServerKind::Empty`].
    pub fn complete(&mut self, vm: &VmRequest, predicted_util_cores: f64) {
        debug_assert!(self.n_vms > 0, "completing a VM on an empty server");
        self.alloc_cores = (self.alloc_cores - vm.cores as f64).max(0.0);
        self.alloc_memory_gb = (self.alloc_memory_gb - vm.memory_gb).max(0.0);
        if self.kind == ServerKind::Oversubscribable {
            self.predicted_util_cores = (self.predicted_util_cores - predicted_util_cores).max(0.0);
        }
        self.n_vms -= 1;
        if self.n_vms == 0 {
            self.kind = ServerKind::Empty;
            self.alloc_cores = 0.0;
            self.alloc_memory_gb = 0.0;
            self.predicted_util_cores = 0.0;
        }
    }

    /// Free physical memory.
    pub fn free_memory_gb(&self) -> f64 {
        self.capacity_memory_gb - self.alloc_memory_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::ClientInputs;
    use rc_trace::UtilParams;
    use rc_types::time::Timestamp;
    use rc_types::vm::{OsType, Party, SubscriptionId, VmId, VmRole};

    fn request(cores: u32, prod: ProdTag) -> VmRequest {
        VmRequest {
            vm_id: VmId(1),
            cores,
            memory_gb: 3.5,
            prod,
            created: Timestamp::ZERO,
            deleted: Timestamp::from_hours(1),
            util: UtilParams::creation_test(1),
            inputs: ClientInputs {
                subscription: SubscriptionId(0),
                party: Party::First,
                role: VmRole::Iaas,
                prod,
                os: OsType::Linux,
                sku_index: 2,
                deployment_time: Timestamp::ZERO,
                deployment_size_hint: 1,
                service: None,
            },
            true_p95_bucket: 3,
        }
    }

    #[test]
    fn first_placement_tags_the_server() {
        let mut s = Server::new(16.0, 112.0);
        assert_eq!(s.kind, ServerKind::Empty);
        s.place(&request(2, ProdTag::NonProduction), 1.0);
        assert_eq!(s.kind, ServerKind::Oversubscribable);
        assert_eq!(s.alloc_cores, 2.0);
        assert_eq!(s.predicted_util_cores, 1.0);

        let mut p = Server::new(16.0, 112.0);
        p.place(&request(2, ProdTag::Production), 1.0);
        assert_eq!(p.kind, ServerKind::NonOversubscribable);
        // Production servers don't track predicted utilization.
        assert_eq!(p.predicted_util_cores, 0.0);
    }

    #[test]
    fn place_and_complete_are_inverses() {
        let mut s = Server::new(16.0, 112.0);
        let vm = request(4, ProdTag::NonProduction);
        s.place(&vm, 2.0);
        s.place(&vm, 2.0);
        s.complete(&vm, 2.0);
        assert_eq!(s.alloc_cores, 4.0);
        assert_eq!(s.predicted_util_cores, 2.0);
        assert_eq!(s.n_vms, 1);
        s.complete(&vm, 2.0);
        assert!(s.is_empty());
        assert_eq!(s.kind, ServerKind::Empty);
        assert_eq!(s.alloc_cores, 0.0);
    }

    #[test]
    fn emptied_server_takes_either_kind() {
        let mut s = Server::new(16.0, 112.0);
        let nonprod = request(2, ProdTag::NonProduction);
        s.place(&nonprod, 1.0);
        s.complete(&nonprod, 1.0);
        let prod = request(2, ProdTag::Production);
        s.place(&prod, 1.0);
        assert_eq!(s.kind, ServerKind::NonOversubscribable);
    }
}
