//! Server state and Algorithm 1's bookkeeping (PlaceVM / VMCompleted).
//!
//! Two representations live here: [`Server`], the array-of-structs record
//! Algorithm 1 is written against (kept for unit-level reasoning and
//! property tests), and [`ServerFleet`], the struct-of-arrays layout the
//! scheduler's hot path actually runs on. The fleet keeps the per-field
//! arrays cache-friendly for candidate scans, maintains fleet-wide
//! aggregates (total allocation, oversubscribable/busy counts)
//! incrementally on place/complete instead of per-query full scans, and
//! indexes occupied and empty servers so selection never touches servers
//! that cannot win.

use std::collections::BTreeSet;

use rc_types::vm::ProdTag;

use crate::request::VmRequest;

/// Logical server grouping under the oversubscription scheme (§5): empty
/// servers take either kind of VM and are tagged by their first placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// No VMs placed; eligible for either group.
    Empty,
    /// Hosts only production workloads; never oversubscribed.
    NonOversubscribable,
    /// Hosts only non-production workloads; may be oversubscribed.
    Oversubscribable,
}

/// One physical server.
#[derive(Debug, Clone)]
pub struct Server {
    /// Physical core capacity (`SERVER_CAPACITY` in Algorithm 1).
    pub capacity_cores: f64,
    /// Physical memory capacity in GB.
    pub capacity_memory_gb: f64,
    /// Sum of resident VMs' core allocations (`c.alloc`).
    pub alloc_cores: f64,
    /// Sum of resident VMs' memory allocations.
    pub alloc_memory_gb: f64,
    /// Sum of resident VMs' predicted P95 utilizations in core units
    /// (`c.util`); tracked only on oversubscribable servers.
    pub predicted_util_cores: f64,
    /// Current grouping.
    pub kind: ServerKind,
    /// Resident VM count.
    pub n_vms: u32,
}

impl Server {
    /// A new, empty server.
    pub fn new(capacity_cores: f64, capacity_memory_gb: f64) -> Self {
        Server {
            capacity_cores,
            capacity_memory_gb,
            alloc_cores: 0.0,
            alloc_memory_gb: 0.0,
            predicted_util_cores: 0.0,
            kind: ServerKind::Empty,
            n_vms: 0,
        }
    }

    /// True when no VMs are resident (`c.alloc == 0` in Algorithm 1).
    pub fn is_empty(&self) -> bool {
        self.n_vms == 0
    }

    /// Algorithm 1, `PlaceVM`: tags an empty server by the VM's type, then
    /// adds the allocation (and predicted utilization when
    /// oversubscribable).
    pub fn place(&mut self, vm: &VmRequest, predicted_util_cores: f64) {
        if self.is_empty() {
            self.kind = match vm.prod {
                ProdTag::Production => ServerKind::NonOversubscribable,
                ProdTag::NonProduction => ServerKind::Oversubscribable,
            };
        }
        self.alloc_cores += vm.cores as f64;
        self.alloc_memory_gb += vm.memory_gb;
        self.n_vms += 1;
        if self.kind == ServerKind::Oversubscribable {
            self.predicted_util_cores += predicted_util_cores;
        }
    }

    /// Algorithm 1, `VMCompleted`: releases the allocation; an emptied
    /// server reverts to [`ServerKind::Empty`].
    pub fn complete(&mut self, vm: &VmRequest, predicted_util_cores: f64) {
        debug_assert!(self.n_vms > 0, "completing a VM on an empty server");
        self.alloc_cores = (self.alloc_cores - vm.cores as f64).max(0.0);
        self.alloc_memory_gb = (self.alloc_memory_gb - vm.memory_gb).max(0.0);
        if self.kind == ServerKind::Oversubscribable {
            self.predicted_util_cores = (self.predicted_util_cores - predicted_util_cores).max(0.0);
        }
        self.n_vms -= 1;
        if self.n_vms == 0 {
            self.kind = ServerKind::Empty;
            self.alloc_cores = 0.0;
            self.alloc_memory_gb = 0.0;
            self.predicted_util_cores = 0.0;
        }
    }

    /// Free physical memory.
    pub fn free_memory_gb(&self) -> f64 {
        self.capacity_memory_gb - self.alloc_memory_gb
    }
}

/// Struct-of-arrays server fleet: the scheduler hot path's layout.
///
/// Per-server state lives in parallel arrays; fleet-wide aggregates and
/// the occupied/empty indices are maintained incrementally by
/// [`ServerFleet::place`] / [`ServerFleet::complete`], so
/// `total_alloc_cores`, `busy_servers`, and `oversubscribable_servers`
/// are O(1) reads. Core counts are integer-valued `f64`s, so the running
/// total is exact (bit-equal to a fresh full-scan sum).
#[derive(Debug, Clone)]
pub struct ServerFleet {
    capacity_cores: f64,
    capacity_memory_gb: f64,
    alloc_cores: Vec<f64>,
    alloc_memory_gb: Vec<f64>,
    predicted_util_cores: Vec<f64>,
    kind: Vec<ServerKind>,
    n_vms: Vec<u32>,
    /// Exact running sum of `alloc_cores`.
    total_alloc_cores: f64,
    /// Running count of oversubscribable servers.
    n_oversubscribable: usize,
    /// Occupied server indices, in first-fill order (swap-removed).
    occupied: Vec<u32>,
    /// Position of server `i` in `occupied`, or `u32::MAX` when empty.
    occupied_pos: Vec<u32>,
    /// Empty server indices, ordered — the lowest is the canonical empty
    /// candidate (all empties rank equal, and index order breaks ties).
    empty: BTreeSet<u32>,
}

impl ServerFleet {
    /// A fleet of `n` identical empty servers.
    pub fn new(n: usize, capacity_cores: f64, capacity_memory_gb: f64) -> Self {
        assert!(u32::try_from(n).is_ok(), "fleet size {n} exceeds u32 indexing");
        ServerFleet {
            capacity_cores,
            capacity_memory_gb,
            alloc_cores: vec![0.0; n],
            alloc_memory_gb: vec![0.0; n],
            predicted_util_cores: vec![0.0; n],
            kind: vec![ServerKind::Empty; n],
            n_vms: vec![0; n],
            total_alloc_cores: 0.0,
            n_oversubscribable: 0,
            occupied: Vec::with_capacity(n),
            occupied_pos: vec![u32::MAX; n],
            empty: (0..n as u32).collect(),
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// True for a zero-server fleet.
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Physical core capacity of each server.
    pub fn capacity_cores(&self) -> f64 {
        self.capacity_cores
    }

    /// Physical memory capacity of each server.
    pub fn capacity_memory_gb(&self) -> f64 {
        self.capacity_memory_gb
    }

    /// Server `i`'s grouping.
    pub fn kind(&self, i: usize) -> ServerKind {
        self.kind[i]
    }

    /// Server `i`'s allocated cores.
    pub fn alloc_cores(&self, i: usize) -> f64 {
        self.alloc_cores[i]
    }

    /// Server `i`'s free physical memory.
    pub fn free_memory_gb(&self, i: usize) -> f64 {
        self.capacity_memory_gb - self.alloc_memory_gb[i]
    }

    /// Server `i`'s charged predicted-P95 core units.
    pub fn predicted_util_cores(&self, i: usize) -> f64 {
        self.predicted_util_cores[i]
    }

    /// Server `i`'s resident-VM count.
    pub fn n_vms(&self, i: usize) -> u32 {
        self.n_vms[i]
    }

    /// True when server `i` hosts no VMs.
    pub fn server_is_empty(&self, i: usize) -> bool {
        self.n_vms[i] == 0
    }

    /// Occupied server indices (arbitrary order; callers needing a
    /// deterministic preference must rank candidates explicitly).
    pub fn occupied(&self) -> &[u32] {
        &self.occupied
    }

    /// The lowest-index empty server, if any.
    pub fn lowest_empty(&self) -> Option<usize> {
        self.empty.first().map(|&i| i as usize)
    }

    /// Total allocated cores across the fleet — O(1), maintained
    /// incrementally and exact (core counts are integers).
    pub fn total_alloc_cores(&self) -> f64 {
        self.total_alloc_cores
    }

    /// Number of non-empty servers — O(1).
    pub fn busy_servers(&self) -> usize {
        self.occupied.len()
    }

    /// Number of oversubscribable servers — O(1).
    pub fn oversubscribable_servers(&self) -> usize {
        self.n_oversubscribable
    }

    /// Full-scan recomputation of the incremental aggregates:
    /// `(total_alloc_cores, busy, oversubscribable)`. Test oracle for the
    /// incremental bookkeeping; the hot path never calls it.
    pub fn recompute_aggregates(&self) -> (f64, usize, usize) {
        let total: f64 = self.alloc_cores.iter().sum();
        let busy = self.n_vms.iter().filter(|&&n| n > 0).count();
        let oversub = self.kind.iter().filter(|&&k| k == ServerKind::Oversubscribable).count();
        (total, busy, oversub)
    }

    /// An array-of-structs copy of server `i` (tests and diagnostics).
    pub fn server(&self, i: usize) -> Server {
        Server {
            capacity_cores: self.capacity_cores,
            capacity_memory_gb: self.capacity_memory_gb,
            alloc_cores: self.alloc_cores[i],
            alloc_memory_gb: self.alloc_memory_gb[i],
            predicted_util_cores: self.predicted_util_cores[i],
            kind: self.kind[i],
            n_vms: self.n_vms[i],
        }
    }

    /// Algorithm 1, `PlaceVM`, on server `i`; updates the aggregates and
    /// the occupied/empty indices.
    pub fn place(&mut self, i: usize, vm: &VmRequest, predicted_util_cores: f64) {
        if self.n_vms[i] == 0 {
            self.kind[i] = match vm.prod {
                ProdTag::Production => ServerKind::NonOversubscribable,
                ProdTag::NonProduction => {
                    self.n_oversubscribable += 1;
                    ServerKind::Oversubscribable
                }
            };
            self.empty.remove(&(i as u32));
            self.occupied_pos[i] = self.occupied.len() as u32;
            self.occupied.push(i as u32);
        }
        self.alloc_cores[i] += vm.cores as f64;
        self.alloc_memory_gb[i] += vm.memory_gb;
        self.total_alloc_cores += vm.cores as f64;
        self.n_vms[i] += 1;
        if self.kind[i] == ServerKind::Oversubscribable {
            self.predicted_util_cores[i] += predicted_util_cores;
        }
    }

    /// Algorithm 1, `VMCompleted`, on server `i`; an emptied server
    /// reverts to [`ServerKind::Empty`] and rejoins the empty index.
    pub fn complete(&mut self, i: usize, vm: &VmRequest, predicted_util_cores: f64) {
        debug_assert!(self.n_vms[i] > 0, "completing a VM on an empty server");
        let before = self.alloc_cores[i];
        self.alloc_cores[i] = (self.alloc_cores[i] - vm.cores as f64).max(0.0);
        self.total_alloc_cores -= before - self.alloc_cores[i];
        self.alloc_memory_gb[i] = (self.alloc_memory_gb[i] - vm.memory_gb).max(0.0);
        if self.kind[i] == ServerKind::Oversubscribable {
            self.predicted_util_cores[i] =
                (self.predicted_util_cores[i] - predicted_util_cores).max(0.0);
        }
        self.n_vms[i] -= 1;
        if self.n_vms[i] == 0 {
            if self.kind[i] == ServerKind::Oversubscribable {
                self.n_oversubscribable -= 1;
            }
            self.kind[i] = ServerKind::Empty;
            self.total_alloc_cores -= self.alloc_cores[i];
            self.alloc_cores[i] = 0.0;
            self.alloc_memory_gb[i] = 0.0;
            self.predicted_util_cores[i] = 0.0;
            // Swap-remove from the occupied list, fixing the moved entry.
            let pos = self.occupied_pos[i] as usize;
            self.occupied.swap_remove(pos);
            if let Some(&moved) = self.occupied.get(pos) {
                self.occupied_pos[moved as usize] = pos as u32;
            }
            self.occupied_pos[i] = u32::MAX;
            self.empty.insert(i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::ClientInputs;
    use rc_trace::UtilParams;
    use rc_types::time::Timestamp;
    use rc_types::vm::{OsType, Party, SubscriptionId, VmId, VmRole};

    fn request(cores: u32, prod: ProdTag) -> VmRequest {
        VmRequest {
            vm_id: VmId(1),
            cores,
            memory_gb: 3.5,
            prod,
            created: Timestamp::ZERO,
            deleted: Timestamp::from_hours(1),
            util: UtilParams::creation_test(1),
            inputs: ClientInputs {
                subscription: SubscriptionId(0),
                party: Party::First,
                role: VmRole::Iaas,
                prod,
                os: OsType::Linux,
                sku_index: 2,
                deployment_time: Timestamp::ZERO,
                deployment_size_hint: 1,
                service: None,
            },
            true_p95_bucket: 3,
        }
    }

    #[test]
    fn first_placement_tags_the_server() {
        let mut s = Server::new(16.0, 112.0);
        assert_eq!(s.kind, ServerKind::Empty);
        s.place(&request(2, ProdTag::NonProduction), 1.0);
        assert_eq!(s.kind, ServerKind::Oversubscribable);
        assert_eq!(s.alloc_cores, 2.0);
        assert_eq!(s.predicted_util_cores, 1.0);

        let mut p = Server::new(16.0, 112.0);
        p.place(&request(2, ProdTag::Production), 1.0);
        assert_eq!(p.kind, ServerKind::NonOversubscribable);
        // Production servers don't track predicted utilization.
        assert_eq!(p.predicted_util_cores, 0.0);
    }

    #[test]
    fn place_and_complete_are_inverses() {
        let mut s = Server::new(16.0, 112.0);
        let vm = request(4, ProdTag::NonProduction);
        s.place(&vm, 2.0);
        s.place(&vm, 2.0);
        s.complete(&vm, 2.0);
        assert_eq!(s.alloc_cores, 4.0);
        assert_eq!(s.predicted_util_cores, 2.0);
        assert_eq!(s.n_vms, 1);
        s.complete(&vm, 2.0);
        assert!(s.is_empty());
        assert_eq!(s.kind, ServerKind::Empty);
        assert_eq!(s.alloc_cores, 0.0);
    }

    #[test]
    fn emptied_server_takes_either_kind() {
        let mut s = Server::new(16.0, 112.0);
        let nonprod = request(2, ProdTag::NonProduction);
        s.place(&nonprod, 1.0);
        s.complete(&nonprod, 1.0);
        let prod = request(2, ProdTag::Production);
        s.place(&prod, 1.0);
        assert_eq!(s.kind, ServerKind::NonOversubscribable);
    }

    #[test]
    fn fleet_mirrors_server_semantics() {
        // Drive a Server and the same index of a ServerFleet through an
        // identical op sequence; every per-server field must agree.
        let mut aos = Server::new(16.0, 112.0);
        let mut fleet = ServerFleet::new(3, 16.0, 112.0);
        let nonprod = request(4, ProdTag::NonProduction);
        let prod = request(2, ProdTag::Production);
        aos.place(&nonprod, 1.5);
        fleet.place(1, &nonprod, 1.5);
        aos.place(&nonprod, 0.5);
        fleet.place(1, &nonprod, 0.5);
        aos.complete(&nonprod, 1.5);
        fleet.complete(1, &nonprod, 1.5);
        let copy = fleet.server(1);
        assert_eq!(copy.alloc_cores, aos.alloc_cores);
        assert_eq!(copy.alloc_memory_gb, aos.alloc_memory_gb);
        assert_eq!(copy.predicted_util_cores, aos.predicted_util_cores);
        assert_eq!(copy.kind, aos.kind);
        assert_eq!(copy.n_vms, aos.n_vms);
        aos.complete(&nonprod, 0.5);
        fleet.complete(1, &nonprod, 0.5);
        assert_eq!(fleet.server(1).kind, ServerKind::Empty);
        aos.place(&prod, 0.0);
        fleet.place(1, &prod, 0.0);
        assert_eq!(fleet.server(1).kind, aos.kind);
    }

    #[test]
    fn fleet_aggregates_match_full_scans() {
        let mut fleet = ServerFleet::new(8, 16.0, 112.0);
        let nonprod = request(4, ProdTag::NonProduction);
        let prod = request(2, ProdTag::Production);
        for i in [0usize, 3, 5] {
            fleet.place(i, &nonprod, 1.0);
        }
        for i in [1usize, 3] {
            fleet.place(i, &prod, 0.0);
        }
        fleet.complete(5, &nonprod, 1.0);
        let (total, busy, oversub) = fleet.recompute_aggregates();
        assert_eq!(fleet.total_alloc_cores(), total);
        assert_eq!(fleet.busy_servers(), busy);
        assert_eq!(fleet.oversubscribable_servers(), oversub);
    }

    #[test]
    fn fleet_occupied_and_empty_indices_stay_consistent() {
        let mut fleet = ServerFleet::new(5, 16.0, 112.0);
        let vm = request(4, ProdTag::Production);
        for i in 0..5 {
            fleet.place(i, &vm, 0.0);
        }
        assert_eq!(fleet.lowest_empty(), None);
        // Empty out of the middle; swap-remove must keep positions valid.
        fleet.complete(2, &vm, 0.0);
        fleet.complete(0, &vm, 0.0);
        assert_eq!(fleet.lowest_empty(), Some(0));
        assert_eq!(fleet.busy_servers(), 3);
        let mut occ: Vec<u32> = fleet.occupied().to_vec();
        occ.sort_unstable();
        assert_eq!(occ, vec![1, 3, 4]);
        // Refill; the lowest empty is chosen first by convention.
        fleet.place(fleet.lowest_empty().unwrap(), &vm, 0.0);
        assert_eq!(fleet.lowest_empty(), Some(2));
    }
}
