//! Class-aware power capping (§4.1).
//!
//! "During a power emergency (when the power draw is about to exceed a
//! circuit breaker limit), the power capping system can query RC for
//! predictions of VM workload interactivity, before apportioning the
//! available power budget across servers. Ideally, VMs executing
//! interactive workloads should receive all the power they may want, in
//! detriment of VMs running batch and background tasks."
//!
//! [`apportion_power`] implements that policy: VMs *confidently* predicted
//! delay-insensitive absorb the whole shortfall; everything else —
//! confidently interactive or unclassifiable — keeps full power
//! (mistaking delay-insensitive for interactive is the safe direction,
//! §3.6).

use rc_core::{ClientInputs, RcClient};
use rc_types::metrics::PredictionMetric;
use rc_types::vm::VmId;

/// A VM under the capped breaker, with its full power draw in watts.
#[derive(Debug, Clone, Copy)]
pub struct PoweredVm {
    /// The VM.
    pub vm_id: VmId,
    /// Full (uncapped) power draw.
    pub full_watts: f64,
    /// Client inputs for the class prediction.
    pub inputs: ClientInputs,
}

/// One VM's power assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAssignment {
    /// The VM.
    pub vm_id: VmId,
    /// Granted power in watts.
    pub granted_watts: f64,
    /// True when the VM was treated as cappable (confident
    /// delay-insensitive prediction).
    pub cappable: bool,
}

/// The apportionment for a power emergency.
#[derive(Debug, Clone)]
pub struct PowerPlan {
    /// Per-VM grants, in input order.
    pub assignments: Vec<PowerAssignment>,
    /// Fraction of full power granted to cappable (delay-insensitive) VMs.
    pub cap_fraction: f64,
    /// Watts the plan still exceeds the budget by (only non-zero when even
    /// capping every delay-insensitive VM to zero cannot fit the budget —
    /// the protected set alone violates the breaker).
    pub shortfall_watts: f64,
}

impl PowerPlan {
    /// Total granted watts.
    pub fn total_granted(&self) -> f64 {
        self.assignments.iter().map(|a| a.granted_watts).sum()
    }
}

/// Apportions `budget_watts` across `vms` using workload-class
/// predictions at confidence threshold `theta`.
pub fn apportion_power(
    client: &RcClient,
    vms: &[PoweredVm],
    budget_watts: f64,
    theta: f64,
) -> PowerPlan {
    // Classify: cappable = confidently delay-insensitive (bucket 0).
    let cappable: Vec<bool> = vms
        .iter()
        .map(|vm| {
            client
                .predict_single(PredictionMetric::WorkloadClass.model_name(), &vm.inputs)
                .confident(theta)
                .is_some_and(|p| p.value == 0)
        })
        .collect();
    let protected_watts: f64 =
        vms.iter().zip(&cappable).filter(|(_, &c)| !c).map(|(v, _)| v.full_watts).sum();
    let cappable_watts: f64 =
        vms.iter().zip(&cappable).filter(|(_, &c)| c).map(|(v, _)| v.full_watts).sum();

    let remaining = budget_watts - protected_watts;
    let cap_fraction =
        if cappable_watts <= 0.0 { 1.0 } else { (remaining / cappable_watts).clamp(0.0, 1.0) };
    let shortfall_watts = (protected_watts - budget_watts).max(0.0);

    let assignments = vms
        .iter()
        .zip(&cappable)
        .map(|(vm, &c)| PowerAssignment {
            vm_id: vm.vm_id,
            granted_watts: if c { vm.full_watts * cap_fraction } else { vm.full_watts },
            cappable: c,
        })
        .collect();
    PowerPlan { assignments, cap_fraction, shortfall_watts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::{ClientConfig, PipelineConfig, RcClient};
    use rc_store::Store;
    use rc_trace::{Trace, TraceConfig};
    use rc_types::time::Timestamp;

    fn world() -> (Trace, RcClient) {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 5_000,
            n_subscriptions: 200,
            days: 24,
            ..TraceConfig::small()
        });
        let output = rc_core::run_pipeline(&trace, &PipelineConfig::fast(24)).unwrap();
        let store = Store::in_memory();
        output.publish(&store, 0.5).unwrap();
        let client = RcClient::new(store, ClientConfig::default());
        assert!(client.initialize());
        (trace, client)
    }

    fn rack(trace: &Trace, n: usize) -> Vec<PoweredVm> {
        let now = Timestamp::from_days(20);
        trace
            .vm_ids()
            .filter(|&id| trace.vm(id).alive_at(now))
            .step_by(7)
            .take(n)
            .map(|id| PoweredVm {
                vm_id: id,
                full_watts: trace.vm(id).sku.cores as f64 * 12.0,
                inputs: rc_core::labels::vm_inputs(trace, id),
            })
            .collect()
    }

    #[test]
    fn plan_fits_budget_when_feasible() {
        let (trace, client) = world();
        let vms = rack(&trace, 40);
        let full: f64 = vms.iter().map(|v| v.full_watts).sum();
        let plan = apportion_power(&client, &vms, full * 0.9, 0.6);
        if plan.shortfall_watts == 0.0 {
            assert!(plan.total_granted() <= full * 0.9 + 1e-6);
        }
        assert_eq!(plan.assignments.len(), vms.len());
    }

    #[test]
    fn protected_vms_keep_full_power() {
        let (trace, client) = world();
        let vms = rack(&trace, 40);
        let full: f64 = vms.iter().map(|v| v.full_watts).sum();
        let plan = apportion_power(&client, &vms, full * 0.7, 0.6);
        for (a, vm) in plan.assignments.iter().zip(&vms) {
            if !a.cappable {
                assert_eq!(a.granted_watts, vm.full_watts);
            } else {
                assert!(a.granted_watts <= vm.full_watts + 1e-9);
            }
        }
    }

    #[test]
    fn generous_budget_caps_nothing() {
        let (trace, client) = world();
        let vms = rack(&trace, 20);
        let full: f64 = vms.iter().map(|v| v.full_watts).sum();
        let plan = apportion_power(&client, &vms, full * 1.5, 0.6);
        assert_eq!(plan.cap_fraction, 1.0);
        assert!((plan.total_granted() - full).abs() < 1e-9);
        assert_eq!(plan.shortfall_watts, 0.0);
    }

    #[test]
    fn impossible_budget_reports_shortfall() {
        let (trace, client) = world();
        let vms = rack(&trace, 20);
        let plan = apportion_power(&client, &vms, 0.0, 0.6);
        assert_eq!(plan.cap_fraction, 0.0);
        assert!(plan.shortfall_watts >= 0.0);
        // Delay-insensitive VMs are fully shed.
        for a in plan.assignments.iter().filter(|a| a.cappable) {
            assert_eq!(a.granted_watts, 0.0);
        }
    }

    #[test]
    fn class_aware_beats_uniform_capping_for_protected_vms() {
        // Under uniform capping every VM runs at budget/full; under the
        // class-aware plan protected VMs keep 100%.
        let (trace, client) = world();
        let vms = rack(&trace, 40);
        let full: f64 = vms.iter().map(|v| v.full_watts).sum();
        let plan = apportion_power(&client, &vms, full * 0.85, 0.6);
        if plan.shortfall_watts == 0.0 {
            let protected: Vec<_> = plan.assignments.iter().filter(|a| !a.cappable).collect();
            if !protected.is_empty() {
                for a in protected {
                    let uniform =
                        vms.iter().find(|v| v.vm_id == a.vm_id).unwrap().full_watts * 0.85;
                    assert!(a.granted_watts > uniform);
                }
            }
        }
    }
}
