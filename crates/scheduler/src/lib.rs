//! RC-informed VM scheduling (§5) and its simulator (§6.2).
//!
//! The production scheduler is a rule chain: hard rules narrow the
//! candidate servers, soft rules are dropped when they would eliminate
//! every candidate. This crate implements Algorithm 1 of the paper — the
//! CPU-oversubscription rule plus its PlaceVM / VMCompleted bookkeeping —
//! and an event-driven simulator faithful to the paper's methodology
//! (5-minute aggregation of co-located VMs' maximum utilizations,
//! scheduling-failure counting), covering all six §6.2 policies:
//! Baseline, Naive, RC-informed-soft/-hard, RC-soft-right and
//! RC-soft-wrong.

pub mod maintenance;
pub mod policy;
pub mod power;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod simulator;
pub mod stream_source;

pub use maintenance::{plan_maintenance, MaintenancePlan, MigrationReason, ResidentVm};
pub use policy::{NoSource, OracleSource, P95Source, PolicyKind, RcSource, WrongSource};
pub use power::{apportion_power, PowerAssignment, PowerPlan, PoweredVm};
pub use request::VmRequest;
pub use scheduler::{Placement, Scheduler, SchedulerConfig};
pub use server::{Server, ServerFleet, ServerKind};
pub use simulator::{
    simulate, simulate_partitioned, simulate_stream, suggest_server_count,
    suggest_server_count_stream, SimConfig, SimReport, OBS_TICK_DAILY,
};
pub use stream_source::StreamRequestSource;
