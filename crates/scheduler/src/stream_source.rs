//! Streaming request source: [`VmRequest`]s straight from a trace
//! stream, without materializing the trace.
//!
//! [`StreamRequestSource`] is the streaming twin of
//! [`VmRequest::stream_filtered`]: it applies the same window, VM-size,
//! and deployment-size filters and derives the same
//! [`rc_core::ClientInputs`] and oracle P95 bucket — but from
//! [`StreamedVm`]s as they are generated, so a million-arrival
//! simulation never holds more than the live-VM working set. The
//! emitted requests are already sorted by `(created, vm_id)`, the order
//! [`crate::simulate_stream`] requires, because the stream assigns VM
//! ids in creation order.

use rc_core::ClientInputs;
use rc_trace::{StreamedVm, VmStream};
use rc_types::buckets::{Bucketizer, UtilizationBucketizer};
use rc_types::time::{Timestamp, TELEMETRY_INTERVAL};

use crate::request::VmRequest;

/// Adapts a stream of generated VMs into scheduler requests.
pub struct StreamRequestSource<I> {
    inner: I,
    /// Per-subscription top service id, indexed by `SubscriptionId`.
    services: Vec<Option<u8>>,
    window_end: Timestamp,
    from: Timestamp,
    until: Timestamp,
    max_cores: u32,
    max_deployment_cores: Option<u32>,
}

impl StreamRequestSource<VmStream> {
    /// Wraps a [`VmStream`] with the same filters as
    /// [`VmRequest::stream_filtered`].
    pub fn new(
        stream: VmStream,
        from: Timestamp,
        until: Timestamp,
        max_cores: u32,
        max_deployment_cores: Option<u32>,
    ) -> Self {
        let services = stream.subscriptions().iter().map(|s| s.service).collect();
        let window_end = stream.window_end();
        StreamRequestSource {
            inner: stream,
            services,
            window_end,
            from,
            until,
            max_cores,
            max_deployment_cores,
        }
    }
}

impl<I> StreamRequestSource<I> {
    /// Wraps any stream of [`StreamedVm`]s; `services` maps subscription
    /// index → top service id and `window_end` bounds the observed
    /// utilization summary (both come from the trace config).
    pub fn from_parts(
        inner: I,
        services: Vec<Option<u8>>,
        window_end: Timestamp,
        from: Timestamp,
        until: Timestamp,
        max_cores: u32,
        max_deployment_cores: Option<u32>,
    ) -> Self {
        StreamRequestSource {
            inner,
            services,
            window_end,
            from,
            until,
            max_cores,
            max_deployment_cores,
        }
    }
}

impl<I: Iterator<Item = StreamedVm>> Iterator for StreamRequestSource<I> {
    type Item = VmRequest;

    fn next(&mut self) -> Option<VmRequest> {
        loop {
            let vm = self.inner.next()?;
            let rec = &vm.record;
            if rec.created < self.from
                || rec.created >= self.until
                || rec.sku.cores > self.max_cores
            {
                continue;
            }
            if let Some(cap) = self.max_deployment_cores {
                if vm.deployment.n_cores > cap {
                    continue;
                }
            }
            // Observed-lifetime P95, identical to Trace::vm_util_summary:
            // slots clipped to the observation window, subsampled to 120.
            let step = TELEMETRY_INTERVAL.as_secs();
            let first = rec.created.as_secs().div_ceil(step);
            let last = (rec.deleted.min(self.window_end).as_secs() / step).max(first);
            let (_, p95) = vm.util.summarize(first, last, 120);
            return Some(VmRequest {
                vm_id: rec.vm_id,
                cores: rec.sku.cores,
                memory_gb: rec.sku.memory_gb,
                prod: rec.prod,
                created: rec.created,
                deleted: rec.deleted,
                util: vm.util,
                inputs: ClientInputs {
                    subscription: rec.subscription,
                    party: rec.party,
                    role: rec.role,
                    prod: rec.prod,
                    os: rec.os,
                    sku_index: rec.sku.catalog_index(),
                    deployment_time: rec.created,
                    deployment_size_hint: vm.deployment.n_vms,
                    service: self.services.get(rec.subscription.0 as usize).copied().flatten(),
                },
                true_p95_bucket: UtilizationBucketizer.bucket(&p95),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_trace::{Trace, TraceConfig};

    fn config() -> TraceConfig {
        TraceConfig { target_vms: 3_000, n_subscriptions: 150, days: 14, ..TraceConfig::small() }
    }

    #[test]
    fn streamed_requests_match_materialized_stream() {
        let config = config();
        let trace = Trace::generate(&config);
        let until = Timestamp::from_days(config.days as u64);
        let materialized = VmRequest::stream_filtered(&trace, Timestamp::ZERO, until, 16, Some(64));
        let streamed: Vec<VmRequest> =
            StreamRequestSource::new(VmStream::new(&config), Timestamp::ZERO, until, 16, Some(64))
                .collect();
        assert_eq!(materialized.len(), streamed.len());
        for (a, b) in materialized.iter().zip(&streamed) {
            assert_eq!(a.vm_id, b.vm_id);
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.created, b.created);
            assert_eq!(a.deleted, b.deleted);
            assert_eq!(a.prod, b.prod);
            assert_eq!(a.true_p95_bucket, b.true_p95_bucket);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.memory_gb.to_bits(), b.memory_gb.to_bits());
        }
    }

    #[test]
    fn window_filters_apply_to_streamed_requests() {
        let config = config();
        let from = Timestamp::from_days(3);
        let until = Timestamp::from_days(10);
        let reqs: Vec<VmRequest> =
            StreamRequestSource::new(VmStream::new(&config), from, until, 8, None).collect();
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert!(r.created >= from && r.created < until);
            assert!(r.cores <= 8);
        }
        for w in reqs.windows(2) {
            assert!((w[0].created, w[0].vm_id) <= (w[1].created, w[1].vm_id));
        }
    }
}
