//! The rule-chain scheduler and Algorithm 1's candidate-selection rule.
//!
//! The production scheduler "sequentially applies a set of rules that
//! progressively narrow the choice of servers" (§5); hard rules cannot be
//! violated, soft rules are disregarded when honouring them would leave no
//! candidate. Here the chain is: (1) the hard fit rule — allocation and
//! memory, with Algorithm 1's grouping and oversubscription limits; (2)
//! the utilization-cap rule, hard or soft per policy; (3) the soft
//! prefer-filled rule ("fill up non-oversubscribable servers before
//! placing VMs in empty servers") combined with tightest-fit selection.

use rc_obs::Counter;
use rc_types::buckets::UtilizationBucketizer;
use rc_types::vm::ProdTag;

use crate::policy::{P95Source, PolicyKind};
use crate::request::VmRequest;
use crate::server::{ServerFleet, ServerKind};

/// Scheduler parameters (§6.2 defaults: 125% / 100% / theta 0.6).
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Which §6.2 variant to run.
    pub policy: PolicyKind,
    /// `MAX_OVERSUB`: allowed virtual-core allocation as a fraction of
    /// physical capacity on oversubscribable servers (1.25 = 125%).
    pub max_oversub: f64,
    /// `MAX_UTIL`: allowed sum of predicted P95 utilizations as a fraction
    /// of physical capacity.
    pub max_util: f64,
    /// Predictions below this confidence are ignored (Algorithm 1 line
    /// 10 uses 0.6).
    pub confidence_threshold: f64,
    /// Added to every predicted bucket (the "+1 bucket" utilization
    /// sensitivity study); clamped to bucket 3.
    pub bucket_shift: usize,
}

impl SchedulerConfig {
    /// The paper's default settings for a policy.
    pub fn new(policy: PolicyKind) -> Self {
        SchedulerConfig {
            policy,
            max_oversub: 1.25,
            max_util: 1.00,
            confidence_threshold: 0.6,
            bucket_shift: 0,
        }
    }
}

/// The cluster scheduler: the server fleet plus the placement logic.
///
/// Selection scans only the occupied-server index (plus at most one empty
/// representative — all empty servers are interchangeable, so the
/// lowest-index one stands for the group, which is exactly the server the
/// old full scan's first-wins tie-break would have picked). The
/// preference order among candidates is unchanged: filled before empty,
/// then tightest fit (highest allocation), then lowest index.
pub struct Scheduler {
    /// Server fleet (struct-of-arrays hot-path layout).
    pub fleet: ServerFleet,
    /// Parameters.
    pub config: SchedulerConfig,
    source: Box<dyn P95Source>,
    metrics: SchedMetrics,
}

/// Pre-resolved global-registry handles for the placement path.
struct SchedMetrics {
    placements: Counter,
    failures: Counter,
    rule_relaxations: Counter,
    util_cap_rejections: Counter,
}

impl SchedMetrics {
    fn new() -> Self {
        let reg = rc_obs::global();
        SchedMetrics {
            placements: reg.counter(rc_obs::SCHED_PLACEMENTS),
            failures: reg.counter(rc_obs::SCHED_FAILURES),
            rule_relaxations: reg.counter(rc_obs::SCHED_RULE_RELAXATIONS),
            util_cap_rejections: reg.counter(rc_obs::SCHED_UTIL_CAP_REJECTIONS),
        }
    }
}

/// Outcome of a placement attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index of the chosen server.
    pub server: usize,
    /// Predicted P95 utilization in core units charged to the server
    /// (`V.util` in Algorithm 1); zero for policies that don't track it.
    pub predicted_util_cores: f64,
    /// The model's raw predicted P95 bucket when a confident prediction
    /// informed this placement (pre `bucket_shift`); `None` for
    /// policies without predictions or low-confidence calls. The
    /// simulator pairs it with the observed bucket at completion to
    /// feed the accuracy tracker.
    pub predicted_p95: Option<usize>,
}

impl Scheduler {
    /// Builds a scheduler over `n_servers` identical servers.
    pub fn new(
        n_servers: usize,
        cores_per_server: f64,
        memory_per_server_gb: f64,
        config: SchedulerConfig,
        source: Box<dyn P95Source>,
    ) -> Self {
        Scheduler {
            fleet: ServerFleet::new(n_servers, cores_per_server, memory_per_server_gb),
            config,
            source,
            metrics: SchedMetrics::new(),
        }
    }

    /// Algorithm 1's estimate of the VM's utilization in core units —
    /// `Highest_Util_in_Bucket[pred] * V.alloc` for a confident
    /// prediction, the full allocation otherwise — plus the raw
    /// predicted bucket the estimate came from, if any.
    fn predicted_util_cores(&self, req: &VmRequest) -> (f64, Option<usize>) {
        match self.source.predict_p95(req) {
            Some((bucket, score)) if score >= self.config.confidence_threshold => {
                let shifted = (bucket + self.config.bucket_shift).min(3);
                let util =
                    UtilizationBucketizer::highest_util_in_bucket(shifted) * req.cores as f64;
                (util, Some(bucket))
            }
            // Low confidence or no prediction: "it is safest to assume
            // that the VM will exhibit 100% utilization" (§5).
            _ => (req.cores as f64, None),
        }
    }

    /// Attempts to place a VM; applies PlaceVM bookkeeping on success.
    ///
    /// Returns `None` on a scheduling failure (no eligible server).
    pub fn schedule(&mut self, req: &VmRequest) -> Option<Placement> {
        let selected = match self.config.policy {
            PolicyKind::Baseline => self.select_baseline(req),
            PolicyKind::NaiveOversub => self.select_grouped(req, None),
            PolicyKind::RcInformedSoft | PolicyKind::RcInformedHard => {
                let (util, bucket) = self.predicted_util_cores(req);
                let hard = self.config.policy == PolicyKind::RcInformedHard;
                let selected = self.select_grouped(req, Some(util));
                match selected {
                    Some(p) => Some(Placement { predicted_p95: bucket, ..p }),
                    // Soft rule: drop the utilization cap rather than fail.
                    None if !hard => {
                        self.metrics.rule_relaxations.increment();
                        self.select_grouped(req, Some(f64::INFINITY)).map(|p| Placement {
                            predicted_util_cores: util,
                            predicted_p95: bucket,
                            ..p
                        })
                    }
                    None => None,
                }
            }
        };
        let Some(placement) = selected else {
            self.metrics.failures.increment();
            return None;
        };
        self.fleet.place(placement.server, req, placement.predicted_util_cores);
        self.metrics.placements.increment();
        Some(placement)
    }

    /// VMCompleted bookkeeping.
    pub fn complete(&mut self, req: &VmRequest, placement: Placement) {
        self.fleet.complete(placement.server, req, placement.predicted_util_cores);
    }

    /// Replaces `best` when `(alloc, i)` wins the filled-server
    /// preference: tightest fit (highest allocation) first, lowest index
    /// on ties — the order the old full index scan's first-wins strict
    /// comparison produced, made explicit because the occupied index is
    /// scanned in arbitrary order.
    fn prefer(best: Option<(f64, usize)>, alloc: f64, i: usize) -> bool {
        match best {
            None => true,
            Some((best_alloc, best_i)) => alloc > best_alloc || (alloc == best_alloc && i < best_i),
        }
    }

    /// Baseline selection: any server with free allocation and memory; no
    /// grouping, no oversubscription.
    fn select_baseline(&self, req: &VmRequest) -> Option<Placement> {
        let cores = req.cores as f64;
        let capacity = self.fleet.capacity_cores();
        let mut best: Option<(f64, usize)> = None;
        for &i in self.fleet.occupied() {
            let i = i as usize;
            let alloc = self.fleet.alloc_cores(i);
            if alloc + cores <= capacity
                && self.fleet.free_memory_gb(i) >= req.memory_gb
                && Self::prefer(best, alloc, i)
            {
                best = Some((alloc, i));
            }
        }
        let server = best.map(|(_, i)| i).or_else(|| {
            // Soft fill rule: empty servers only when no filled server
            // fits. Empty servers are interchangeable, so eligibility is
            // a property of the request; take the lowest index.
            self.fleet
                .lowest_empty()
                .filter(|_| cores <= capacity && req.memory_gb <= self.fleet.capacity_memory_gb())
        });
        server.map(|server| Placement { server, predicted_util_cores: 0.0, predicted_p95: None })
    }

    /// Grouped selection per Algorithm 1's `SelectCandidateServers`.
    ///
    /// `util_cores`: `Some(v)` applies the utilization cap with that
    /// charge (infinite `v` disables the cap but still records grouping);
    /// `None` is the Naive policy (no utilization tracking at all).
    fn select_grouped(&self, req: &VmRequest, util_cores: Option<f64>) -> Option<Placement> {
        let production = req.prod == ProdTag::Production;
        let cores = req.cores as f64;
        let capacity = self.fleet.capacity_cores();
        let alloc_limit = if production { capacity } else { self.config.max_oversub * capacity };
        let util_charge = match util_cores {
            Some(v) if !production && v.is_finite() => Some(v),
            _ => None,
        };

        let mut best: Option<(f64, usize)> = None;
        for &i in self.fleet.occupied() {
            let i = i as usize;
            let group_ok = matches!(
                (production, self.fleet.kind(i)),
                (true, ServerKind::NonOversubscribable) | (false, ServerKind::Oversubscribable)
            );
            if !group_ok || self.fleet.free_memory_gb(i) < req.memory_gb {
                continue;
            }
            let alloc = self.fleet.alloc_cores(i);
            if alloc + cores > alloc_limit {
                continue;
            }
            if let Some(v) = util_charge {
                if self.fleet.predicted_util_cores(i) + v > self.config.max_util * capacity {
                    self.metrics.util_cap_rejections.increment();
                    continue;
                }
            }
            if Self::prefer(best, alloc, i) {
                best = Some((alloc, i));
            }
        }
        let server = best.map(|(_, i)| i).or_else(|| {
            let empty_ok = req.memory_gb <= self.fleet.capacity_memory_gb()
                && cores <= alloc_limit
                && match util_charge {
                    Some(v) => {
                        let ok = v <= self.config.max_util * capacity;
                        if !ok && self.fleet.lowest_empty().is_some() {
                            self.metrics.util_cap_rejections.increment();
                        }
                        ok
                    }
                    None => true,
                };
            if empty_ok {
                self.fleet.lowest_empty()
            } else {
                None
            }
        });
        server.map(|server| Placement {
            server,
            predicted_util_cores: match util_cores {
                Some(v) if v.is_finite() => v,
                _ => 0.0,
            },
            predicted_p95: None,
        })
    }

    /// Total allocated cores across the fleet — O(1).
    pub fn total_alloc_cores(&self) -> f64 {
        self.fleet.total_alloc_cores()
    }

    /// Number of non-empty servers — O(1).
    pub fn busy_servers(&self) -> usize {
        self.fleet.busy_servers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoSource, OracleSource};
    use rc_core::ClientInputs;
    use rc_trace::UtilParams;
    use rc_types::time::Timestamp;
    use rc_types::vm::{OsType, Party, SubscriptionId, VmId, VmRole};

    fn request(id: u64, cores: u32, prod: ProdTag, bucket: usize) -> VmRequest {
        VmRequest {
            vm_id: VmId(id),
            cores,
            memory_gb: 2.0,
            prod,
            created: Timestamp::ZERO,
            deleted: Timestamp::from_hours(1),
            util: UtilParams::creation_test(id),
            inputs: ClientInputs {
                subscription: SubscriptionId(0),
                party: Party::First,
                role: VmRole::Iaas,
                prod,
                os: OsType::Linux,
                sku_index: 2,
                deployment_time: Timestamp::ZERO,
                deployment_size_hint: 1,
                service: None,
            },
            true_p95_bucket: bucket,
        }
    }

    fn scheduler(policy: PolicyKind, n: usize) -> Scheduler {
        Scheduler::new(n, 16.0, 112.0, SchedulerConfig::new(policy), Box::new(OracleSource))
    }

    #[test]
    fn baseline_fills_to_capacity_and_fails_beyond() {
        let mut s = scheduler(PolicyKind::Baseline, 2);
        // 2 servers x 16 cores = 8 four-core VMs.
        for i in 0..8 {
            assert!(s.schedule(&request(i, 4, ProdTag::Production, 0)).is_some(), "vm {i}");
        }
        assert!(s.schedule(&request(99, 4, ProdTag::Production, 0)).is_none());
        assert_eq!(s.total_alloc_cores(), 32.0);
    }

    #[test]
    fn baseline_ignores_prod_split() {
        let mut s = scheduler(PolicyKind::Baseline, 1);
        assert!(s.schedule(&request(1, 4, ProdTag::Production, 0)).is_some());
        assert!(s.schedule(&request(2, 4, ProdTag::NonProduction, 0)).is_some());
        assert_eq!(s.busy_servers(), 1);
    }

    #[test]
    fn grouping_segregates_prod_from_nonprod() {
        let mut s = scheduler(PolicyKind::RcInformedSoft, 2);
        assert!(s.schedule(&request(1, 4, ProdTag::Production, 0)).is_some());
        assert!(s.schedule(&request(2, 4, ProdTag::NonProduction, 0)).is_some());
        assert_eq!(s.busy_servers(), 2);
        assert_eq!(s.fleet.kind(0), ServerKind::NonOversubscribable);
        assert_eq!(s.fleet.kind(1), ServerKind::Oversubscribable);
    }

    #[test]
    fn oversubscription_admits_extra_nonprod_allocation() {
        // One server: prod stops at 16 cores; nonprod (low-util oracle
        // bucket 0 -> 25% charge) reaches 125% = 20 cores.
        let mut s = scheduler(PolicyKind::RcInformedSoft, 1);
        for i in 0..5 {
            assert!(s.schedule(&request(i, 4, ProdTag::NonProduction, 0)).is_some(), "vm {i}");
        }
        assert_eq!(s.total_alloc_cores(), 20.0);
        assert!(s.schedule(&request(9, 4, ProdTag::NonProduction, 0)).is_none());
    }

    #[test]
    fn hard_rule_enforces_utilization_cap() {
        // High-utilization VMs (bucket 3 => full charge): the cap of 16
        // core-units of predicted P95 binds before the 20-core alloc cap.
        let mut s = scheduler(PolicyKind::RcInformedHard, 1);
        for i in 0..4 {
            assert!(s.schedule(&request(i, 4, ProdTag::NonProduction, 3)).is_some());
        }
        assert!(s.schedule(&request(9, 4, ProdTag::NonProduction, 3)).is_none());
        assert_eq!(s.total_alloc_cores(), 16.0);
    }

    #[test]
    fn soft_rule_relaxes_utilization_cap() {
        let mut s = scheduler(PolicyKind::RcInformedSoft, 1);
        for i in 0..5 {
            assert!(
                s.schedule(&request(i, 4, ProdTag::NonProduction, 3)).is_some(),
                "soft rule should relax the cap for vm {i}"
            );
        }
        // Allocation cap still binds.
        assert!(s.schedule(&request(9, 4, ProdTag::NonProduction, 3)).is_none());
        assert_eq!(s.total_alloc_cores(), 20.0);
    }

    #[test]
    fn no_prediction_assumes_full_utilization() {
        let mut s = Scheduler::new(
            1,
            16.0,
            112.0,
            SchedulerConfig::new(PolicyKind::RcInformedHard),
            Box::new(NoSource),
        );
        for i in 0..4 {
            assert!(s.schedule(&request(i, 4, ProdTag::NonProduction, 0)).is_some());
        }
        // Charged at full allocation, the 16-core util cap is now binding.
        assert!(s.schedule(&request(9, 4, ProdTag::NonProduction, 0)).is_none());
    }

    #[test]
    fn prefers_filling_over_empty_servers() {
        let mut s = scheduler(PolicyKind::RcInformedSoft, 3);
        let p1 = s.schedule(&request(1, 2, ProdTag::Production, 0)).unwrap();
        let p2 = s.schedule(&request(2, 2, ProdTag::Production, 0)).unwrap();
        assert_eq!(p1.server, p2.server, "second prod VM should pack onto the first");
    }

    #[test]
    fn completion_frees_capacity() {
        let mut s = scheduler(PolicyKind::Baseline, 1);
        let req = request(1, 16, ProdTag::Production, 0);
        let p = s.schedule(&req).unwrap();
        assert!(s.schedule(&request(2, 16, ProdTag::Production, 0)).is_none());
        s.complete(&req, p);
        assert!(s.schedule(&request(3, 16, ProdTag::Production, 0)).is_some());
    }

    #[test]
    fn memory_is_a_hard_dimension() {
        let mut s = scheduler(PolicyKind::Baseline, 1);
        let mut req = request(1, 2, ProdTag::Production, 0);
        req.memory_gb = 200.0;
        assert!(s.schedule(&req).is_none(), "memory must not be oversubscribed");
    }

    #[test]
    fn bucket_shift_tightens_admission() {
        let mut cfg = SchedulerConfig::new(PolicyKind::RcInformedHard);
        cfg.bucket_shift = 1;
        let mut s = Scheduler::new(1, 16.0, 112.0, cfg, Box::new(OracleSource));
        // Bucket 2 shifted to 3 => full charge; cap binds at 4 VMs.
        for i in 0..4 {
            assert!(s.schedule(&request(i, 4, ProdTag::NonProduction, 2)).is_some());
        }
        assert!(s.schedule(&request(9, 4, ProdTag::NonProduction, 2)).is_none());
    }
}
