//! Scheduling requests: one per VM arrival.

use rc_core::ClientInputs;
use rc_trace::{Trace, UtilParams};
use rc_types::time::Timestamp;
use rc_types::vm::{ProdTag, VmId};

/// Everything the scheduler knows (and the simulator needs) about one VM
/// arrival.
#[derive(Debug, Clone, Copy)]
pub struct VmRequest {
    /// The VM being placed.
    pub vm_id: VmId,
    /// Requested cores (`V.alloc` in Algorithm 1).
    pub cores: u32,
    /// Requested memory in GB.
    pub memory_gb: f64,
    /// Production annotation (`V.type` in Algorithm 1).
    pub prod: ProdTag,
    /// Arrival time.
    pub created: Timestamp,
    /// Completion time.
    pub deleted: Timestamp,
    /// The utilization model driving the simulator's aggregation.
    pub util: UtilParams,
    /// Client inputs passed to Resource Central.
    pub inputs: ClientInputs,
    /// Oracle 95th-percentile utilization bucket (for the RC-soft-right /
    /// RC-soft-wrong comparisons; the real policies never read it).
    pub true_p95_bucket: usize,
}

impl VmRequest {
    /// Builds the request stream for every VM created in
    /// `[from, until)`, sorted by arrival time, skipping VMs too large for
    /// `max_cores` (cluster selection would never send those here).
    pub fn stream(
        trace: &Trace,
        from: Timestamp,
        until: Timestamp,
        max_cores: u32,
    ) -> Vec<VmRequest> {
        Self::stream_filtered(trace, from, until, max_cores, None)
    }

    /// Like [`VmRequest::stream`], additionally dropping every VM of a
    /// deployment whose total core request exceeds
    /// `max_deployment_cores`.
    ///
    /// A deployment "needs to fit" within one cluster (§3); the cluster
    /// selection system routes groups that cannot fit to larger clusters,
    /// so a cluster-level simulation should never see them.
    pub fn stream_filtered(
        trace: &Trace,
        from: Timestamp,
        until: Timestamp,
        max_cores: u32,
        max_deployment_cores: Option<u32>,
    ) -> Vec<VmRequest> {
        use rc_types::buckets::{Bucketizer, UtilizationBucketizer};
        let bucketizer = UtilizationBucketizer;
        let mut out = Vec::new();
        for id in trace.vm_ids() {
            let vm = trace.vm(id);
            if vm.created < from || vm.created >= until || vm.sku.cores > max_cores {
                continue;
            }
            if let Some(cap) = max_deployment_cores {
                if trace.deployments[vm.deployment.0 as usize].n_cores > cap {
                    continue;
                }
            }
            let (_, p95) = trace.vm_util_summary(id, 120);
            out.push(VmRequest {
                vm_id: id,
                cores: vm.sku.cores,
                memory_gb: vm.sku.memory_gb,
                prod: vm.prod,
                created: vm.created,
                deleted: vm.deleted,
                util: *trace.util_params(id),
                inputs: rc_core::labels::vm_inputs(trace, id),
                true_p95_bucket: bucketizer.bucket(&p95),
            });
        }
        // `trace.vms` is creation-sorted already, but make it a guarantee.
        out.sort_by_key(|r| (r.created, r.vm_id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_trace::TraceConfig;

    #[test]
    fn stream_is_sorted_filtered_and_windowed() {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 3_000,
            n_subscriptions: 150,
            days: 20,
            ..TraceConfig::small()
        });
        let from = Timestamp::from_days(5);
        let until = Timestamp::from_days(15);
        let reqs = VmRequest::stream(&trace, from, until, 16);
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert!(r.created >= from && r.created < until);
            assert!(r.cores <= 16);
            assert!(r.deleted > r.created);
        }
        for w in reqs.windows(2) {
            assert!(w[0].created <= w[1].created);
        }
    }
}
