//! The event-driven cluster simulator (§6.2, "Methodology").
//!
//! Faithful to the paper's description: VM arrivals are scheduled against
//! the rule chain; each server's CPU utilization is aggregated per
//! 5-minute period by *adding up the co-located VMs' maximum
//! utilizations* — pessimistic, since it assumes each maximum lasts the
//! whole period — and a reading above 100% of physical capacity means
//! virtual cores would have had to timeslice physical ones.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use rc_obs::AccuracyTracker;
use rc_types::metrics::PredictionMetric;
use rc_types::time::{Timestamp, TELEMETRY_INTERVAL};

use crate::policy::P95Source;
use crate::request::VmRequest;
use crate::scheduler::{Placement, Scheduler, SchedulerConfig};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Fleet size (the paper simulates 880 servers).
    pub n_servers: usize,
    /// Physical cores per server (paper: 16).
    pub cores_per_server: f64,
    /// Physical memory per server in GB (paper: 112).
    pub memory_per_server_gb: f64,
    /// Scheduler policy and limits.
    pub scheduler: SchedulerConfig,
    /// Added to every VM's per-interval maximum utilization (the "+25%"
    /// sensitivity study); clamped so no VM exceeds its allocation.
    pub util_shift: f64,
    /// Evaluate utilization every Nth telemetry slot (1 = every 5 min;
    /// larger strides trade reading counts for speed in tests).
    pub tick_stride: u64,
    /// Simulated seconds between observability epochs: each one ticks
    /// the accuracy tracker and the global registry's windowed
    /// instruments on the simulation's logical clock (0 disables).
    pub obs_tick_secs: u64,
    /// Accuracy tracker fed `(predicted, observed)` P95 bucket pairs as
    /// VMs place and resolve; `None` uses the process-global tracker.
    pub accuracy: Option<Arc<AccuracyTracker>>,
}

impl SimConfig {
    /// The paper's cluster: 880 servers, 16 cores, 112 GB.
    pub fn paper_cluster(scheduler: SchedulerConfig) -> Self {
        SimConfig {
            n_servers: 880,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler,
            util_shift: 0.0,
            tick_stride: 1,
            obs_tick_secs: OBS_TICK_DAILY,
            accuracy: None,
        }
    }
}

/// The default observability epoch: one simulated day.
pub const OBS_TICK_DAILY: u64 = 86_400;

/// Results of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy label.
    pub policy: String,
    /// VM arrivals offered.
    pub n_arrivals: u64,
    /// Arrivals that could not be placed.
    pub n_failures: u64,
    /// Failed arrivals that were production VMs.
    pub n_failures_production: u64,
    /// Mean number of servers tagged oversubscribable over the run.
    pub mean_oversubscribable_servers: f64,
    /// Per-server 5-minute readings above 100% of physical CPU.
    pub readings_above_100: u64,
    /// Total per-server readings taken.
    pub total_readings: u64,
    /// Peak concurrently-allocated cores.
    pub peak_alloc_cores: f64,
    /// Mean allocated-core fraction across the fleet over the run.
    pub mean_alloc_fraction: f64,
    /// Mean *actual* utilization fraction across the fleet over the run.
    pub mean_util_fraction: f64,
}

impl SimReport {
    /// Failures as a fraction of arrivals.
    pub fn failure_rate(&self) -> f64 {
        if self.n_arrivals == 0 {
            0.0
        } else {
            self.n_failures as f64 / self.n_arrivals as f64
        }
    }
}

/// Runs one simulation over a request stream.
///
/// `window` bounds the utilization accounting; requests outside it are
/// still placed/completed but produce no readings.
pub fn simulate(
    requests: &[VmRequest],
    config: &SimConfig,
    source: Box<dyn P95Source>,
    window: (Timestamp, Timestamp),
) -> SimReport {
    let mut scheduler = Scheduler::new(
        config.n_servers,
        config.cores_per_server,
        config.memory_per_server_gb,
        config.scheduler.clone(),
        source,
    );
    // Residents per server: indices into `requests`.
    let mut resident: Vec<Vec<u32>> = vec![Vec::new(); config.n_servers];
    let mut placements: Vec<Option<Placement>> = vec![None; requests.len()];
    let mut completions: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    let step = TELEMETRY_INTERVAL.as_secs() * config.tick_stride.max(1);
    let mut next_tick = (window.0.as_secs() / step) * step;
    if next_tick < window.0.as_secs() {
        next_tick += step;
    }

    // Accuracy feedback loop: record the predicted P95 bucket at
    // placement, feed back the trace's true bucket when the VM resolves,
    // and advance the observability epoch on the simulated clock.
    let tracker: &AccuracyTracker =
        config.accuracy.as_deref().unwrap_or_else(|| rc_obs::global_accuracy());
    let p95_metric = PredictionMetric::P95MaxCpuUtil.model_name();
    let registry = rc_obs::global();
    let placements_windowed = registry.windowed_counter(rc_obs::SCHED_PLACEMENTS_WINDOWED);
    let overloaded_windowed = registry.windowed_counter(rc_obs::SCHED_OVERLOADED_WINDOWED);
    let mut next_obs_tick = if config.obs_tick_secs == 0 {
        u64::MAX
    } else {
        window.0.as_secs() + config.obs_tick_secs
    };
    let mut advance_obs = |upto: u64| {
        while next_obs_tick <= upto {
            tracker.tick();
            registry.tick();
            next_obs_tick += config.obs_tick_secs;
        }
    };

    let mut n_failures = 0u64;
    let mut n_failures_production = 0u64;
    let mut sum_oversub_servers = 0u64;
    let mut readings_above_100 = 0u64;
    let mut total_readings = 0u64;
    let mut peak_alloc = 0.0f64;
    let mut sum_alloc_fraction = 0.0f64;
    let mut sum_util_fraction = 0.0f64;
    let mut n_ticks = 0u64;

    let capacity = config.cores_per_server;
    let fleet_cores = capacity * config.n_servers as f64;

    let process_completions =
        |upto: u64,
         scheduler: &mut Scheduler,
         resident: &mut Vec<Vec<u32>>,
         completions: &mut BinaryHeap<Reverse<(u64, u32)>>,
         placements: &mut Vec<Option<Placement>>| {
            while let Some(&Reverse((t, idx))) = completions.peek() {
                if t > upto {
                    break;
                }
                completions.pop();
                let req = &requests[idx as usize];
                let placement = placements[idx as usize].take().expect("placed VM completes once");
                scheduler.complete(req, placement);
                if placement.predicted_p95.is_some() {
                    tracker.record_outcome(p95_metric, req.vm_id.0, req.true_p95_bucket);
                }
                let list = &mut resident[placement.server];
                let pos = list.iter().position(|&r| r == idx).expect("resident VM");
                list.swap_remove(pos);
            }
        };

    let tick = |at: u64, scheduler: &Scheduler, resident: &Vec<Vec<u32>>| -> (u64, u64, f64, f64) {
        let slot = at / TELEMETRY_INTERVAL.as_secs();
        let mut above = 0u64;
        let mut total = 0u64;
        let mut util_sum = 0.0f64;
        for (s, server) in scheduler.servers.iter().enumerate() {
            let mut used = 0.0f64;
            for &idx in &resident[s] {
                let req = &requests[idx as usize];
                let max = (req.util.reading(slot).max + config.util_shift).clamp(0.0, 1.0);
                used += max * req.cores as f64;
            }
            total += 1;
            if used > capacity + 1e-9 {
                above += 1;
            }
            util_sum += used.min(capacity);
            let _ = server;
        }
        (above, total, util_sum, scheduler.total_alloc_cores())
    };

    for (idx, req) in requests.iter().enumerate() {
        let now = req.created.as_secs();
        // Advance utilization ticks up to the arrival.
        while next_tick <= now && next_tick < window.1.as_secs() {
            process_completions(
                next_tick,
                &mut scheduler,
                &mut resident,
                &mut completions,
                &mut placements,
            );
            let (above, total, util_sum, alloc) = tick(next_tick, &scheduler, &resident);
            readings_above_100 += above;
            overloaded_windowed.add(above);
            total_readings += total;
            sum_util_fraction += util_sum / fleet_cores;
            sum_alloc_fraction += alloc / fleet_cores;
            sum_oversub_servers += scheduler
                .servers
                .iter()
                .filter(|s| s.kind == crate::server::ServerKind::Oversubscribable)
                .count() as u64;
            n_ticks += 1;
            advance_obs(next_tick);
            next_tick += step;
        }
        process_completions(now, &mut scheduler, &mut resident, &mut completions, &mut placements);
        advance_obs(now);

        match scheduler.schedule(req) {
            Some(placement) => {
                if let Some(bucket) = placement.predicted_p95 {
                    tracker.record_prediction(p95_metric, req.vm_id.0, bucket);
                }
                placements_windowed.increment();
                placements[idx] = Some(placement);
                resident[placement.server].push(idx as u32);
                completions.push(Reverse((req.deleted.as_secs(), idx as u32)));
                peak_alloc = peak_alloc.max(scheduler.total_alloc_cores());
            }
            None => {
                n_failures += 1;
                if req.prod == rc_types::vm::ProdTag::Production {
                    n_failures_production += 1;
                }
            }
        }
    }

    // Drain remaining ticks in the window.
    while next_tick < window.1.as_secs() {
        process_completions(
            next_tick,
            &mut scheduler,
            &mut resident,
            &mut completions,
            &mut placements,
        );
        let (above, total, util_sum, alloc) = tick(next_tick, &scheduler, &resident);
        readings_above_100 += above;
        overloaded_windowed.add(above);
        total_readings += total;
        sum_util_fraction += util_sum / fleet_cores;
        sum_alloc_fraction += alloc / fleet_cores;
        sum_oversub_servers += scheduler
            .servers
            .iter()
            .filter(|s| s.kind == crate::server::ServerKind::Oversubscribable)
            .count() as u64;
        n_ticks += 1;
        advance_obs(next_tick);
        next_tick += step;
    }

    // Bulk-add the run's readings to the global registry; the scheduler
    // already counted placements/failures/relaxations as they happened.
    registry.counter(rc_obs::SCHED_READINGS).add(total_readings);
    registry.counter(rc_obs::SCHED_OVERLOADED_READINGS).add(readings_above_100);

    SimReport {
        policy: config.scheduler.policy.label().to_string(),
        n_arrivals: requests.len() as u64,
        n_failures,
        n_failures_production,
        mean_oversubscribable_servers: if n_ticks == 0 {
            0.0
        } else {
            sum_oversub_servers as f64 / n_ticks as f64
        },
        readings_above_100,
        total_readings,
        peak_alloc_cores: peak_alloc,
        mean_alloc_fraction: if n_ticks == 0 { 0.0 } else { sum_alloc_fraction / n_ticks as f64 },
        mean_util_fraction: if n_ticks == 0 { 0.0 } else { sum_util_fraction / n_ticks as f64 },
    }
}

/// Suggests a fleet size for a request stream so that the Baseline policy
/// lands near (just under) its capacity cliff — the operating point §6.2
/// studies, where Baseline fails ~0.25% of arrivals.
///
/// The estimate takes the peak concurrent core demand over the stream and
/// divides by cores-per-server with `headroom` (e.g. 0.98 ⇒ 2% short).
pub fn suggest_server_count(requests: &[VmRequest], cores_per_server: f64, headroom: f64) -> usize {
    // Sweep arrivals/departures to find peak concurrent demand.
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(requests.len() * 2);
    for r in requests {
        events.push((r.created.as_secs(), r.cores as i64));
        events.push((r.deleted.as_secs(), -(r.cores as i64)));
    }
    events.sort_unstable();
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        cur += delta;
        peak = peak.max(cur);
    }
    (((peak as f64) / cores_per_server) * headroom).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoSource, OracleSource, PolicyKind, WrongSource};
    use rc_trace::{Trace, TraceConfig};

    fn requests() -> Vec<VmRequest> {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 5_000,
            n_subscriptions: 200,
            days: 18,
            ..TraceConfig::small()
        });
        VmRequest::stream(&trace, Timestamp::ZERO, Timestamp::from_days(18), 16)
    }

    fn run(policy: PolicyKind, n_servers: usize, reqs: &[VmRequest]) -> SimReport {
        let mut config = SimConfig {
            n_servers,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler: SchedulerConfig::new(policy),
            util_shift: 0.0,
            tick_stride: 6, // every 30 minutes keeps the test fast
            obs_tick_secs: OBS_TICK_DAILY,
            accuracy: None,
        };
        config.scheduler.policy = policy;
        let source: Box<dyn P95Source> = match policy {
            PolicyKind::RcInformedSoft | PolicyKind::RcInformedHard => Box::new(OracleSource),
            _ => Box::new(NoSource),
        };
        simulate(reqs, &config, source, (Timestamp::ZERO, Timestamp::from_days(18)))
    }

    #[test]
    fn baseline_never_exceeds_physical_capacity() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 1.0);
        let report = run(PolicyKind::Baseline, n, &reqs);
        assert_eq!(report.readings_above_100, 0);
        assert!(report.total_readings > 0);
    }

    #[test]
    fn tight_baseline_fails_some_arrivals() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.80);
        let report = run(PolicyKind::Baseline, n, &reqs);
        assert!(report.n_failures > 0, "headroom 0.8 should cause failures");
    }

    #[test]
    fn oversubscription_adds_capacity_for_nonprod_workloads() {
        // Controlled stream: 60 concurrent low-P95 non-production VMs of 4
        // cores against 10 16-core servers. Baseline capacity is 40
        // concurrent VMs; the 125% allocation cap admits 50. No grouping
        // waste (single kind), so RC-informed must strictly beat Baseline.
        use rc_core::ClientInputs;
        use rc_trace::UtilParams;
        use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmId, VmRole};
        let reqs: Vec<VmRequest> = (0..60u64)
            .map(|i| VmRequest {
                vm_id: VmId(i),
                cores: 4,
                memory_gb: 4.0,
                prod: ProdTag::NonProduction,
                created: Timestamp::from_secs(i),
                deleted: Timestamp::from_days(1),
                util: UtilParams::creation_test(i),
                inputs: ClientInputs {
                    subscription: SubscriptionId(0),
                    party: Party::First,
                    role: VmRole::Iaas,
                    prod: ProdTag::NonProduction,
                    os: OsType::Linux,
                    sku_index: 2,
                    deployment_time: Timestamp::from_secs(i),
                    deployment_size_hint: 1,
                    service: None,
                },
                true_p95_bucket: 0,
            })
            .collect();
        let base = {
            let config = SimConfig {
                n_servers: 10,
                cores_per_server: 16.0,
                memory_per_server_gb: 112.0,
                scheduler: SchedulerConfig::new(PolicyKind::Baseline),
                util_shift: 0.0,
                tick_stride: 6,
                obs_tick_secs: OBS_TICK_DAILY,
                accuracy: None,
            };
            simulate(&reqs, &config, Box::new(NoSource), (Timestamp::ZERO, Timestamp::from_days(1)))
        };
        let rc = {
            let config = SimConfig {
                n_servers: 10,
                cores_per_server: 16.0,
                memory_per_server_gb: 112.0,
                scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
                util_shift: 0.0,
                tick_stride: 6,
                obs_tick_secs: OBS_TICK_DAILY,
                accuracy: None,
            };
            simulate(
                &reqs,
                &config,
                Box::new(OracleSource),
                (Timestamp::ZERO, Timestamp::from_days(1)),
            )
        };
        assert_eq!(base.n_failures, 20);
        assert_eq!(rc.n_failures, 10, "oversubscription admits 10 more VMs");
    }

    #[test]
    fn rc_failure_rate_is_comparable_to_baseline_on_traces() {
        // At trace scale the prod/non-prod segregation wastes some
        // capacity while oversubscription adds some back; on a small
        // cluster the net effect is noisy, so only sanity-bound it here.
        // The full §6.2 comparison runs at paper scale in the bench
        // harness.
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let base = run(PolicyKind::Baseline, n, &reqs);
        let rc = run(PolicyKind::RcInformedSoft, n, &reqs);
        assert!(
            rc.failure_rate() <= base.failure_rate() * 2.0 + 0.01,
            "RC {} vs baseline {}",
            rc.failure_rate(),
            base.failure_rate()
        );
    }

    #[test]
    fn wrong_predictions_hurt_utilization_control() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let mut config = SimConfig {
            n_servers: n,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
            util_shift: 0.0,
            tick_stride: 6,
            obs_tick_secs: OBS_TICK_DAILY,
            accuracy: None,
        };
        let right = simulate(
            &reqs,
            &config,
            Box::new(OracleSource),
            (Timestamp::ZERO, Timestamp::from_days(18)),
        );
        config.scheduler = SchedulerConfig::new(PolicyKind::RcInformedSoft);
        let wrong = simulate(
            &reqs,
            &config,
            Box::new(WrongSource),
            (Timestamp::ZERO, Timestamp::from_days(18)),
        );
        assert!(
            wrong.readings_above_100 >= right.readings_above_100,
            "wrong {} vs right {}",
            wrong.readings_above_100,
            right.readings_above_100
        );
    }

    #[test]
    fn report_accounting_is_consistent() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let report = run(PolicyKind::NaiveOversub, n, &reqs);
        assert_eq!(report.n_arrivals, reqs.len() as u64);
        assert!(report.n_failures <= report.n_arrivals);
        assert!(report.readings_above_100 <= report.total_readings);
        assert!(report.mean_util_fraction <= report.mean_alloc_fraction + 1e-9);
        assert!(report.failure_rate() <= 1.0);
    }

    #[test]
    fn suggest_server_count_scales_with_headroom() {
        let reqs = requests();
        let tight = suggest_server_count(&reqs, 16.0, 0.8);
        let roomy = suggest_server_count(&reqs, 16.0, 1.2);
        assert!(tight < roomy);
        assert!(tight >= 1);
    }
}
