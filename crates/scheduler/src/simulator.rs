//! The event-driven cluster simulator (§6.2, "Methodology").
//!
//! Faithful to the paper's description: VM arrivals are scheduled against
//! the rule chain; each server's CPU utilization is aggregated per
//! 5-minute period by *adding up the co-located VMs' maximum
//! utilizations* — pessimistic, since it assumes each maximum lasts the
//! whole period — and a reading above 100% of physical capacity means
//! virtual cores would have had to timeslice physical ones.
//!
//! The hot path is built to scale to millions of arrivals:
//!
//! * Requests arrive through an iterator ([`simulate_stream`]), so a
//!   trace never needs to be materialized — peak memory tracks the peak
//!   number of *concurrently live* VMs, not total arrivals.
//! * Live VMs sit in a slot arena ([`LiveVm`] slab + free list); each one
//!   carries a backlink to its position in its server's residency list,
//!   so completion is an O(1) swap-remove rather than a linear
//!   `position()` scan.
//! * Per-tick aggregates that don't depend on the telemetry slot —
//!   allocated cores, oversubscribable-server counts — are maintained
//!   incrementally by [`crate::server::ServerFleet`] and read in O(1);
//!   the utilization pass touches only occupied servers.
//! * [`simulate_partitioned`] shards a request stream across independent
//!   clusters by subscription and simulates them in parallel, merging
//!   the per-cluster reports deterministically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use rc_obs::AccuracyTracker;
use rc_types::metrics::PredictionMetric;
use rc_types::time::{Timestamp, TELEMETRY_INTERVAL};

use crate::policy::P95Source;
use crate::request::VmRequest;
use crate::scheduler::{Placement, Scheduler, SchedulerConfig};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Fleet size (the paper simulates 880 servers).
    pub n_servers: usize,
    /// Physical cores per server (paper: 16).
    pub cores_per_server: f64,
    /// Physical memory per server in GB (paper: 112).
    pub memory_per_server_gb: f64,
    /// Scheduler policy and limits.
    pub scheduler: SchedulerConfig,
    /// Added to every VM's per-interval maximum utilization (the "+25%"
    /// sensitivity study); clamped so no VM exceeds its allocation.
    pub util_shift: f64,
    /// Evaluate utilization every Nth telemetry slot (1 = every 5 min;
    /// larger strides trade reading counts for speed in tests).
    pub tick_stride: u64,
    /// Simulated seconds between observability epochs: each one ticks
    /// the accuracy tracker and the global registry's windowed
    /// instruments on the simulation's logical clock (0 disables).
    pub obs_tick_secs: u64,
    /// Accuracy tracker fed `(predicted, observed)` P95 bucket pairs as
    /// VMs place and resolve; `None` uses the process-global tracker.
    pub accuracy: Option<Arc<AccuracyTracker>>,
}

impl SimConfig {
    /// The paper's cluster: 880 servers, 16 cores, 112 GB.
    pub fn paper_cluster(scheduler: SchedulerConfig) -> Self {
        SimConfig {
            n_servers: 880,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler,
            util_shift: 0.0,
            tick_stride: 1,
            obs_tick_secs: OBS_TICK_DAILY,
            accuracy: None,
        }
    }
}

/// The default observability epoch: one simulated day.
pub const OBS_TICK_DAILY: u64 = 86_400;

/// Results of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy label.
    pub policy: String,
    /// Servers simulated (summed across clusters by [`SimReport::merge`]).
    pub n_servers: u64,
    /// VM arrivals offered.
    pub n_arrivals: u64,
    /// Arrivals that could not be placed.
    pub n_failures: u64,
    /// Failed arrivals that were production VMs.
    pub n_failures_production: u64,
    /// Mean number of servers tagged oversubscribable over the run.
    pub mean_oversubscribable_servers: f64,
    /// Per-server 5-minute readings above 100% of physical CPU.
    pub readings_above_100: u64,
    /// Total per-server readings taken.
    pub total_readings: u64,
    /// Peak concurrently-allocated cores.
    pub peak_alloc_cores: f64,
    /// Peak concurrently-resident VMs (sizes the live-VM arena).
    pub peak_live_vms: u64,
    /// Mean allocated-core fraction across the fleet over the run.
    pub mean_alloc_fraction: f64,
    /// Mean *actual* utilization fraction across the fleet over the run.
    pub mean_util_fraction: f64,
}

impl SimReport {
    /// Failures as a fraction of arrivals.
    pub fn failure_rate(&self) -> f64 {
        if self.n_arrivals == 0 {
            0.0
        } else {
            self.n_failures as f64 / self.n_arrivals as f64
        }
    }

    /// Merges per-cluster reports from a partitioned run into one
    /// fleet-wide report.
    ///
    /// Counts sum across clusters. `peak_alloc_cores` and
    /// `peak_live_vms` sum per-cluster peaks, an upper bound on the true
    /// fleet-wide peak (clusters need not peak simultaneously).
    /// `mean_oversubscribable_servers` sums because every cluster ticks
    /// on the same clock, so each tick's fleet-wide count is the sum of
    /// the per-cluster counts. Mean fractions are weighted by each
    /// cluster's server count.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn merge(reports: &[SimReport]) -> SimReport {
        assert!(!reports.is_empty(), "merge needs at least one report");
        let total_servers: u64 = reports.iter().map(|r| r.n_servers).sum();
        let weighted = |field: fn(&SimReport) -> f64| {
            if total_servers == 0 {
                0.0
            } else {
                reports.iter().map(|r| field(r) * r.n_servers as f64).sum::<f64>()
                    / total_servers as f64
            }
        };
        SimReport {
            policy: reports[0].policy.clone(),
            n_servers: total_servers,
            n_arrivals: reports.iter().map(|r| r.n_arrivals).sum(),
            n_failures: reports.iter().map(|r| r.n_failures).sum(),
            n_failures_production: reports.iter().map(|r| r.n_failures_production).sum(),
            mean_oversubscribable_servers: reports
                .iter()
                .map(|r| r.mean_oversubscribable_servers)
                .sum(),
            readings_above_100: reports.iter().map(|r| r.readings_above_100).sum(),
            total_readings: reports.iter().map(|r| r.total_readings).sum(),
            peak_alloc_cores: reports.iter().map(|r| r.peak_alloc_cores).sum(),
            peak_live_vms: reports.iter().map(|r| r.peak_live_vms).sum(),
            mean_alloc_fraction: weighted(|r| r.mean_alloc_fraction),
            mean_util_fraction: weighted(|r| r.mean_util_fraction),
        }
    }
}

/// One placed, still-running VM in the live-VM slot arena.
///
/// Completed VMs return their slot to a free list, so arena size tracks
/// *peak concurrent* VMs rather than total arrivals.
struct LiveVm {
    req: VmRequest,
    placement: Placement,
    /// Position of this VM's slab key inside
    /// `resident[placement.server]` — the backlink that makes eviction an
    /// O(1) swap-remove instead of a linear `position()` scan.
    server_slot: u32,
}

/// Converts a slab/slot index to its `u32` key, failing loudly instead
/// of silently truncating past `u32::MAX` concurrently-live VMs.
///
/// Arrival *counts* flow through `u64` (the completion heap orders ties
/// by a `u64` arrival sequence number), so only the concurrently-live
/// population is bounded by the key width — and crossing that bound
/// panics rather than corrupting residency lists.
#[inline]
pub(crate) fn slab_key(i: usize) -> u32 {
    u32::try_from(i).unwrap_or_else(|_| {
        panic!("live-VM slot index {i} does not fit in u32; widen the slab key type")
    })
}

/// Mutable simulation state shared between arrivals, completions, and
/// utilization ticks.
struct SimState<'a> {
    scheduler: Scheduler,
    slab: Vec<LiveVm>,
    free: Vec<u32>,
    /// Slab keys of the VMs resident on each server.
    resident: Vec<Vec<u32>>,
    /// Min-heap of `(deleted_secs, arrival_seq, slab_key)`.
    completions: BinaryHeap<Reverse<(u64, u64, u32)>>,
    tracker: &'a AccuracyTracker,
    p95_metric: &'static str,
    util_shift: f64,
}

impl SimState<'_> {
    /// Completes every VM whose deletion time is at or before `upto`.
    fn process_completions(&mut self, upto: u64) {
        while let Some(&Reverse((t, _, key))) = self.completions.peek() {
            if t > upto {
                break;
            }
            self.completions.pop();
            let vm = &self.slab[key as usize];
            let req = vm.req;
            let placement = vm.placement;
            let slot = vm.server_slot as usize;
            self.scheduler.complete(&req, placement);
            if placement.predicted_p95.is_some() {
                self.tracker.record_outcome(self.p95_metric, req.vm_id.0, req.true_p95_bucket);
            }
            let list = &mut self.resident[placement.server];
            debug_assert_eq!(list[slot], key, "backlink points at this VM");
            list.swap_remove(slot);
            if let Some(&moved) = list.get(slot) {
                self.slab[moved as usize].server_slot = slot as u32;
            }
            self.free.push(key);
        }
    }

    /// Places a scheduled VM into the arena and residency structures.
    fn admit(&mut self, req: VmRequest, placement: Placement, arrival_seq: u64) {
        let key = match self.free.pop() {
            Some(k) => {
                self.slab[k as usize] = LiveVm { req, placement, server_slot: 0 };
                k
            }
            None => {
                let k = slab_key(self.slab.len());
                self.slab.push(LiveVm { req, placement, server_slot: 0 });
                k
            }
        };
        let list = &mut self.resident[placement.server];
        self.slab[key as usize].server_slot = slab_key(list.len());
        list.push(key);
        self.completions.push(Reverse((req.deleted.as_secs(), arrival_seq, key)));
    }

    /// Number of currently live VMs.
    fn live(&self) -> u64 {
        (self.slab.len() - self.free.len()) as u64
    }

    /// One utilization reading pass: `(readings above 100%, capped
    /// utilization sum in cores)`. Only occupied servers are visited —
    /// empty ones read exactly 0.
    fn tick(&self, at: u64) -> (u64, f64) {
        let slot = at / TELEMETRY_INTERVAL.as_secs();
        let capacity = self.scheduler.fleet.capacity_cores();
        let mut above = 0u64;
        let mut util_sum = 0.0f64;
        for &s in self.scheduler.fleet.occupied() {
            let mut used = 0.0f64;
            for &key in &self.resident[s as usize] {
                let vm = &self.slab[key as usize];
                let max = (vm.req.util.reading(slot).max + self.util_shift).clamp(0.0, 1.0);
                used += max * vm.req.cores as f64;
            }
            if used > capacity + 1e-9 {
                above += 1;
            }
            util_sum += used.min(capacity);
        }
        (above, util_sum)
    }
}

/// Runs one simulation over a materialized request slice.
///
/// `window` bounds the utilization accounting; requests outside it are
/// still placed/completed but produce no readings.
pub fn simulate(
    requests: &[VmRequest],
    config: &SimConfig,
    source: Box<dyn P95Source>,
    window: (Timestamp, Timestamp),
) -> SimReport {
    simulate_stream(requests.iter().copied(), config, source, window)
}

/// Runs one simulation over a request *stream*, without ever holding the
/// full trace: memory use is bounded by the peak number of concurrently
/// live VMs. Requests must arrive sorted by `(created, vm_id)` — the
/// order [`VmRequest::stream`] and the streaming trace both produce.
pub fn simulate_stream<I>(
    requests: I,
    config: &SimConfig,
    source: Box<dyn P95Source>,
    window: (Timestamp, Timestamp),
) -> SimReport
where
    I: IntoIterator<Item = VmRequest>,
{
    let tracker: &AccuracyTracker =
        config.accuracy.as_deref().unwrap_or_else(|| rc_obs::global_accuracy());
    let p95_metric = PredictionMetric::P95MaxCpuUtil.model_name();
    let mut state = SimState {
        scheduler: Scheduler::new(
            config.n_servers,
            config.cores_per_server,
            config.memory_per_server_gb,
            config.scheduler.clone(),
            source,
        ),
        slab: Vec::new(),
        free: Vec::new(),
        resident: vec![Vec::new(); config.n_servers],
        completions: BinaryHeap::new(),
        tracker,
        p95_metric,
        util_shift: config.util_shift,
    };

    let step = TELEMETRY_INTERVAL.as_secs() * config.tick_stride.max(1);
    let mut next_tick = (window.0.as_secs() / step) * step;
    if next_tick < window.0.as_secs() {
        next_tick += step;
    }

    // Accuracy feedback loop: record the predicted P95 bucket at
    // placement, feed back the trace's true bucket when the VM resolves,
    // and advance the observability epoch on the simulated clock.
    let registry = rc_obs::global();
    let placements_windowed = registry.windowed_counter(rc_obs::SCHED_PLACEMENTS_WINDOWED);
    let overloaded_windowed = registry.windowed_counter(rc_obs::SCHED_OVERLOADED_WINDOWED);
    let mut next_obs_tick = if config.obs_tick_secs == 0 {
        u64::MAX
    } else {
        window.0.as_secs() + config.obs_tick_secs
    };
    let mut advance_obs = |upto: u64| {
        while next_obs_tick <= upto {
            tracker.tick();
            registry.tick();
            next_obs_tick += config.obs_tick_secs;
        }
    };

    let mut n_arrivals = 0u64;
    let mut n_failures = 0u64;
    let mut n_failures_production = 0u64;
    let mut sum_oversub_servers = 0u64;
    let mut readings_above_100 = 0u64;
    let mut total_readings = 0u64;
    let mut peak_alloc = 0.0f64;
    let mut peak_live = 0u64;
    let mut sum_alloc_fraction = 0.0f64;
    let mut sum_util_fraction = 0.0f64;
    let mut n_ticks = 0u64;

    let fleet_cores = config.cores_per_server * config.n_servers as f64;
    let window_end_secs = window.1.as_secs();

    // One reading per server per tick; empty servers read 0 without
    // being visited, and the slot-independent aggregates (allocation,
    // oversubscribable count) come from the fleet's incremental sums.
    macro_rules! run_tick {
        () => {{
            state.process_completions(next_tick);
            let (above, util_sum) = state.tick(next_tick);
            readings_above_100 += above;
            overloaded_windowed.add(above);
            total_readings += config.n_servers as u64;
            sum_util_fraction += util_sum / fleet_cores;
            sum_alloc_fraction += state.scheduler.total_alloc_cores() / fleet_cores;
            sum_oversub_servers += state.scheduler.fleet.oversubscribable_servers() as u64;
            n_ticks += 1;
            advance_obs(next_tick);
            next_tick += step;
        }};
    }

    for req in requests {
        let arrival_seq = n_arrivals;
        n_arrivals += 1;
        let now = req.created.as_secs();
        // Advance utilization ticks up to the arrival.
        while next_tick <= now && next_tick < window_end_secs {
            run_tick!();
        }
        state.process_completions(now);
        advance_obs(now);

        match state.scheduler.schedule(&req) {
            Some(placement) => {
                if let Some(bucket) = placement.predicted_p95 {
                    tracker.record_prediction(p95_metric, req.vm_id.0, bucket);
                }
                placements_windowed.increment();
                state.admit(req, placement, arrival_seq);
                peak_alloc = peak_alloc.max(state.scheduler.total_alloc_cores());
                peak_live = peak_live.max(state.live());
            }
            None => {
                n_failures += 1;
                if req.prod == rc_types::vm::ProdTag::Production {
                    n_failures_production += 1;
                }
            }
        }
    }

    // Drain remaining ticks in the window.
    while next_tick < window_end_secs {
        run_tick!();
    }

    // Bulk-add the run's readings to the global registry; the scheduler
    // already counted placements/failures/relaxations as they happened.
    registry.counter(rc_obs::SCHED_READINGS).add(total_readings);
    registry.counter(rc_obs::SCHED_OVERLOADED_READINGS).add(readings_above_100);

    SimReport {
        policy: config.scheduler.policy.label().to_string(),
        n_servers: config.n_servers as u64,
        n_arrivals,
        n_failures,
        n_failures_production,
        mean_oversubscribable_servers: if n_ticks == 0 {
            0.0
        } else {
            sum_oversub_servers as f64 / n_ticks as f64
        },
        readings_above_100,
        total_readings,
        peak_alloc_cores: peak_alloc,
        peak_live_vms: peak_live,
        mean_alloc_fraction: if n_ticks == 0 { 0.0 } else { sum_alloc_fraction / n_ticks as f64 },
        mean_util_fraction: if n_ticks == 0 { 0.0 } else { sum_util_fraction / n_ticks as f64 },
    }
}

/// Simulates `n_clusters` independent clusters in parallel and merges
/// their reports.
///
/// Requests are partitioned by subscription (`subscription.0 %
/// n_clusters`), mirroring cluster selection's affinity: a deployment
/// never spans clusters, and per-subscription behavioral consistency
/// stays within one cluster's history. Each cluster simulates its own
/// `config.n_servers`-server fleet, so the merged report covers
/// `n_clusters * config.n_servers` servers.
///
/// Per-cluster runs force `obs_tick_secs = 0` — observability epochs
/// ticking concurrently from several workers would race the shared
/// registry/tracker windows — which keeps the merged report identical
/// for every worker count, including 1.
pub fn simulate_partitioned(
    requests: &[VmRequest],
    config: &SimConfig,
    make_source: &(dyn Fn() -> Box<dyn P95Source> + Sync),
    window: (Timestamp, Timestamp),
    n_clusters: usize,
    n_workers: usize,
) -> SimReport {
    let n_clusters = n_clusters.max(1);
    let mut parts: Vec<Vec<VmRequest>> = vec![Vec::new(); n_clusters];
    for req in requests {
        parts[req.inputs.subscription.0 as usize % n_clusters].push(*req);
    }
    let cluster_config = SimConfig { obs_tick_secs: 0, ..config.clone() };
    let reports = rc_ml::pool::run(n_workers, n_clusters, |c| {
        simulate(&parts[c], &cluster_config, make_source(), window)
    });
    SimReport::merge(&reports)
}

/// Suggests a fleet size for a request stream so that the Baseline policy
/// lands near (just under) its capacity cliff — the operating point §6.2
/// studies, where Baseline fails ~0.25% of arrivals.
///
/// The estimate takes the peak concurrent core demand over the stream and
/// divides by cores-per-server with `headroom` (e.g. 0.98 ⇒ 2% short).
pub fn suggest_server_count(requests: &[VmRequest], cores_per_server: f64, headroom: f64) -> usize {
    // Sweep arrivals/departures to find peak concurrent demand.
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(requests.len() * 2);
    for r in requests {
        events.push((r.created.as_secs(), r.cores as i64));
        events.push((r.deleted.as_secs(), -(r.cores as i64)));
    }
    events.sort_unstable();
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        cur += delta;
        peak = peak.max(cur);
    }
    (((peak as f64) / cores_per_server) * headroom).ceil().max(1.0) as usize
}

/// [`suggest_server_count`] over a request *stream*: one forward pass
/// with a deletion heap, so memory is bounded by the peak number of
/// concurrently live VMs. Requests must arrive sorted by creation time
/// (departures at time T are released before an arrival at T, matching
/// the slice version's event ordering).
pub fn suggest_server_count_stream<I>(requests: I, cores_per_server: f64, headroom: f64) -> usize
where
    I: IntoIterator<Item = VmRequest>,
{
    let mut deletions: BinaryHeap<Reverse<(u64, i64)>> = BinaryHeap::new();
    let mut cur = 0i64;
    let mut peak = 0i64;
    for r in requests {
        let now = r.created.as_secs();
        while let Some(&Reverse((t, cores))) = deletions.peek() {
            if t > now {
                break;
            }
            deletions.pop();
            cur -= cores;
        }
        cur += r.cores as i64;
        peak = peak.max(cur);
        deletions.push(Reverse((r.deleted.as_secs(), r.cores as i64)));
    }
    (((peak as f64) / cores_per_server) * headroom).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoSource, OracleSource, PolicyKind, WrongSource};
    use rc_trace::{Trace, TraceConfig};

    fn requests() -> Vec<VmRequest> {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 5_000,
            n_subscriptions: 200,
            days: 18,
            ..TraceConfig::small()
        });
        VmRequest::stream(&trace, Timestamp::ZERO, Timestamp::from_days(18), 16)
    }

    fn run(policy: PolicyKind, n_servers: usize, reqs: &[VmRequest]) -> SimReport {
        let mut config = SimConfig {
            n_servers,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler: SchedulerConfig::new(policy),
            util_shift: 0.0,
            tick_stride: 6, // every 30 minutes keeps the test fast
            obs_tick_secs: OBS_TICK_DAILY,
            accuracy: None,
        };
        config.scheduler.policy = policy;
        let source: Box<dyn P95Source> = match policy {
            PolicyKind::RcInformedSoft | PolicyKind::RcInformedHard => Box::new(OracleSource),
            _ => Box::new(NoSource),
        };
        simulate(reqs, &config, source, (Timestamp::ZERO, Timestamp::from_days(18)))
    }

    /// The pre-optimization simulator, kept verbatim as a regression
    /// oracle: residents are request indices, eviction scans with
    /// `position()`, and every per-tick aggregate is recomputed by a
    /// full scan over all servers.
    fn simulate_reference(
        requests: &[VmRequest],
        config: &SimConfig,
        source: Box<dyn P95Source>,
        window: (Timestamp, Timestamp),
    ) -> SimReport {
        let mut scheduler = Scheduler::new(
            config.n_servers,
            config.cores_per_server,
            config.memory_per_server_gb,
            config.scheduler.clone(),
            source,
        );
        let mut resident: Vec<Vec<u32>> = vec![Vec::new(); config.n_servers];
        let mut placements: Vec<Option<Placement>> = vec![None; requests.len()];
        let mut completions: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

        let step = TELEMETRY_INTERVAL.as_secs() * config.tick_stride.max(1);
        let mut next_tick = (window.0.as_secs() / step) * step;
        if next_tick < window.0.as_secs() {
            next_tick += step;
        }

        let tracker: &AccuracyTracker =
            config.accuracy.as_deref().unwrap_or_else(|| rc_obs::global_accuracy());
        let p95_metric = PredictionMetric::P95MaxCpuUtil.model_name();

        let mut n_failures = 0u64;
        let mut n_failures_production = 0u64;
        let mut sum_oversub_servers = 0u64;
        let mut readings_above_100 = 0u64;
        let mut total_readings = 0u64;
        let mut peak_alloc = 0.0f64;
        let mut peak_live = 0u64;
        let mut sum_alloc_fraction = 0.0f64;
        let mut sum_util_fraction = 0.0f64;
        let mut n_ticks = 0u64;
        let mut live = 0u64;

        let capacity = config.cores_per_server;
        let fleet_cores = capacity * config.n_servers as f64;

        let process_completions = |upto: u64,
                                   scheduler: &mut Scheduler,
                                   resident: &mut Vec<Vec<u32>>,
                                   completions: &mut BinaryHeap<Reverse<(u64, u32)>>,
                                   placements: &mut Vec<Option<Placement>>,
                                   live: &mut u64| {
            while let Some(&Reverse((t, idx))) = completions.peek() {
                if t > upto {
                    break;
                }
                completions.pop();
                let req = &requests[idx as usize];
                let placement = placements[idx as usize].take().expect("placed VM completes once");
                scheduler.complete(req, placement);
                if placement.predicted_p95.is_some() {
                    tracker.record_outcome(p95_metric, req.vm_id.0, req.true_p95_bucket);
                }
                let list = &mut resident[placement.server];
                let pos = list.iter().position(|&r| r == idx).expect("resident VM");
                list.swap_remove(pos);
                *live -= 1;
            }
        };

        let tick = |at: u64, scheduler: &Scheduler, resident: &Vec<Vec<u32>>| {
            let slot = at / TELEMETRY_INTERVAL.as_secs();
            let mut above = 0u64;
            let mut total = 0u64;
            let mut util_sum = 0.0f64;
            let mut alloc = 0.0f64;
            let mut oversub = 0u64;
            for (s, residents) in resident.iter().enumerate() {
                let mut used = 0.0f64;
                for &idx in residents {
                    let req = &requests[idx as usize];
                    let max = (req.util.reading(slot).max + config.util_shift).clamp(0.0, 1.0);
                    used += max * req.cores as f64;
                }
                total += 1;
                if used > capacity + 1e-9 {
                    above += 1;
                }
                util_sum += used.min(capacity);
                alloc += scheduler.fleet.alloc_cores(s);
                if scheduler.fleet.kind(s) == crate::server::ServerKind::Oversubscribable {
                    oversub += 1;
                }
            }
            (above, total, util_sum, alloc, oversub)
        };

        for (idx, req) in requests.iter().enumerate() {
            let now = req.created.as_secs();
            while next_tick <= now && next_tick < window.1.as_secs() {
                process_completions(
                    next_tick,
                    &mut scheduler,
                    &mut resident,
                    &mut completions,
                    &mut placements,
                    &mut live,
                );
                let (above, total, util_sum, alloc, oversub) =
                    tick(next_tick, &scheduler, &resident);
                readings_above_100 += above;
                total_readings += total;
                sum_util_fraction += util_sum / fleet_cores;
                sum_alloc_fraction += alloc / fleet_cores;
                sum_oversub_servers += oversub;
                n_ticks += 1;
                next_tick += step;
            }
            process_completions(
                now,
                &mut scheduler,
                &mut resident,
                &mut completions,
                &mut placements,
                &mut live,
            );

            match scheduler.schedule(req) {
                Some(placement) => {
                    if let Some(bucket) = placement.predicted_p95 {
                        tracker.record_prediction(p95_metric, req.vm_id.0, bucket);
                    }
                    placements[idx] = Some(placement);
                    resident[placement.server].push(idx as u32);
                    completions.push(Reverse((req.deleted.as_secs(), idx as u32)));
                    peak_alloc = peak_alloc.max(scheduler.total_alloc_cores());
                    live += 1;
                    peak_live = peak_live.max(live);
                }
                None => {
                    n_failures += 1;
                    if req.prod == rc_types::vm::ProdTag::Production {
                        n_failures_production += 1;
                    }
                }
            }
        }

        while next_tick < window.1.as_secs() {
            process_completions(
                next_tick,
                &mut scheduler,
                &mut resident,
                &mut completions,
                &mut placements,
                &mut live,
            );
            let (above, total, util_sum, alloc, oversub) = tick(next_tick, &scheduler, &resident);
            readings_above_100 += above;
            total_readings += total;
            sum_util_fraction += util_sum / fleet_cores;
            sum_alloc_fraction += alloc / fleet_cores;
            sum_oversub_servers += oversub;
            n_ticks += 1;
            next_tick += step;
        }

        SimReport {
            policy: config.scheduler.policy.label().to_string(),
            n_servers: config.n_servers as u64,
            n_arrivals: requests.len() as u64,
            n_failures,
            n_failures_production,
            mean_oversubscribable_servers: if n_ticks == 0 {
                0.0
            } else {
                sum_oversub_servers as f64 / n_ticks as f64
            },
            readings_above_100,
            total_readings,
            peak_alloc_cores: peak_alloc,
            peak_live_vms: peak_live,
            mean_alloc_fraction: if n_ticks == 0 {
                0.0
            } else {
                sum_alloc_fraction / n_ticks as f64
            },
            mean_util_fraction: if n_ticks == 0 { 0.0 } else { sum_util_fraction / n_ticks as f64 },
        }
    }

    fn assert_reports_match(fast: &SimReport, reference: &SimReport) {
        assert_eq!(fast.n_arrivals, reference.n_arrivals);
        assert_eq!(fast.n_failures, reference.n_failures);
        assert_eq!(fast.n_failures_production, reference.n_failures_production);
        assert_eq!(fast.readings_above_100, reference.readings_above_100);
        assert_eq!(fast.total_readings, reference.total_readings);
        assert_eq!(fast.peak_live_vms, reference.peak_live_vms);
        assert!((fast.peak_alloc_cores - reference.peak_alloc_cores).abs() < 1e-9);
        assert!(
            (fast.mean_oversubscribable_servers - reference.mean_oversubscribable_servers).abs()
                < 1e-9
        );
        assert!((fast.mean_alloc_fraction - reference.mean_alloc_fraction).abs() < 1e-12);
        assert!((fast.mean_util_fraction - reference.mean_util_fraction).abs() < 1e-12);
    }

    #[test]
    fn optimized_matches_reference_simulator() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        for policy in [PolicyKind::Baseline, PolicyKind::RcInformedSoft] {
            let mut config = SimConfig {
                n_servers: n,
                cores_per_server: 16.0,
                memory_per_server_gb: 112.0,
                scheduler: SchedulerConfig::new(policy),
                util_shift: 0.0,
                tick_stride: 6,
                obs_tick_secs: 0,
                accuracy: None,
            };
            config.scheduler.policy = policy;
            let source = || -> Box<dyn P95Source> {
                match policy {
                    PolicyKind::RcInformedSoft => Box::new(OracleSource),
                    _ => Box::new(NoSource),
                }
            };
            let window = (Timestamp::ZERO, Timestamp::from_days(18));
            let fast = simulate(&reqs, &config, source(), window);
            let reference = simulate_reference(&reqs, &config, source(), window);
            assert_reports_match(&fast, &reference);
        }
    }

    #[test]
    fn partitioned_simulation_is_worker_count_invariant() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95).div_ceil(4);
        let config = SimConfig {
            n_servers: n,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
            util_shift: 0.0,
            tick_stride: 6,
            obs_tick_secs: OBS_TICK_DAILY,
            accuracy: None,
        };
        let make = || Box::new(OracleSource) as Box<dyn P95Source>;
        let window = (Timestamp::ZERO, Timestamp::from_days(18));
        let serial = simulate_partitioned(&reqs, &config, &make, window, 4, 1);
        let parallel = simulate_partitioned(&reqs, &config, &make, window, 4, 4);
        assert_eq!(serial.n_arrivals, reqs.len() as u64);
        assert_eq!(serial.n_servers, 4 * n as u64);
        let a = serde_json::to_vec(&serial).unwrap();
        let b = serde_json::to_vec(&parallel).unwrap();
        assert_eq!(a, b, "merged report must not depend on worker count");
    }

    #[test]
    fn zero_event_ticks_read_constant_aggregates() {
        // Between events the slot-independent aggregates come from the
        // fleet's incremental sums: reading them repeatedly is O(1),
        // changes nothing, and matches a full recomputation.
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let mut scheduler = Scheduler::new(
            n,
            16.0,
            112.0,
            SchedulerConfig::new(PolicyKind::RcInformedSoft),
            Box::new(OracleSource),
        );
        for req in reqs.iter().take(500) {
            let _ = scheduler.schedule(req);
        }
        let first = (
            scheduler.total_alloc_cores(),
            scheduler.busy_servers(),
            scheduler.fleet.oversubscribable_servers(),
        );
        let second = (
            scheduler.total_alloc_cores(),
            scheduler.busy_servers(),
            scheduler.fleet.oversubscribable_servers(),
        );
        assert_eq!(first, second);
        let (alloc, busy, oversub) = scheduler.fleet.recompute_aggregates();
        assert!((first.0 - alloc).abs() < 1e-9);
        assert_eq!(first.1, busy);
        assert_eq!(first.2, oversub);
    }

    #[test]
    fn slab_key_is_identity_in_range() {
        assert_eq!(slab_key(0), 0);
        assert_eq!(slab_key(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "does not fit in u32")]
    fn slab_key_fails_loudly_past_u32() {
        let _ = slab_key(u32::MAX as usize + 1);
    }

    #[test]
    fn baseline_never_exceeds_physical_capacity() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 1.0);
        let report = run(PolicyKind::Baseline, n, &reqs);
        assert_eq!(report.readings_above_100, 0);
        assert!(report.total_readings > 0);
    }

    #[test]
    fn tight_baseline_fails_some_arrivals() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.80);
        let report = run(PolicyKind::Baseline, n, &reqs);
        assert!(report.n_failures > 0, "headroom 0.8 should cause failures");
    }

    #[test]
    fn oversubscription_adds_capacity_for_nonprod_workloads() {
        // Controlled stream: 60 concurrent low-P95 non-production VMs of 4
        // cores against 10 16-core servers. Baseline capacity is 40
        // concurrent VMs; the 125% allocation cap admits 50. No grouping
        // waste (single kind), so RC-informed must strictly beat Baseline.
        use rc_core::ClientInputs;
        use rc_trace::UtilParams;
        use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmId, VmRole};
        let reqs: Vec<VmRequest> = (0..60u64)
            .map(|i| VmRequest {
                vm_id: VmId(i),
                cores: 4,
                memory_gb: 4.0,
                prod: ProdTag::NonProduction,
                created: Timestamp::from_secs(i),
                deleted: Timestamp::from_days(1),
                util: UtilParams::creation_test(i),
                inputs: ClientInputs {
                    subscription: SubscriptionId(0),
                    party: Party::First,
                    role: VmRole::Iaas,
                    prod: ProdTag::NonProduction,
                    os: OsType::Linux,
                    sku_index: 2,
                    deployment_time: Timestamp::from_secs(i),
                    deployment_size_hint: 1,
                    service: None,
                },
                true_p95_bucket: 0,
            })
            .collect();
        let base = {
            let config = SimConfig {
                n_servers: 10,
                cores_per_server: 16.0,
                memory_per_server_gb: 112.0,
                scheduler: SchedulerConfig::new(PolicyKind::Baseline),
                util_shift: 0.0,
                tick_stride: 6,
                obs_tick_secs: OBS_TICK_DAILY,
                accuracy: None,
            };
            simulate(&reqs, &config, Box::new(NoSource), (Timestamp::ZERO, Timestamp::from_days(1)))
        };
        let rc = {
            let config = SimConfig {
                n_servers: 10,
                cores_per_server: 16.0,
                memory_per_server_gb: 112.0,
                scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
                util_shift: 0.0,
                tick_stride: 6,
                obs_tick_secs: OBS_TICK_DAILY,
                accuracy: None,
            };
            simulate(
                &reqs,
                &config,
                Box::new(OracleSource),
                (Timestamp::ZERO, Timestamp::from_days(1)),
            )
        };
        assert_eq!(base.n_failures, 20);
        assert_eq!(rc.n_failures, 10, "oversubscription admits 10 more VMs");
    }

    #[test]
    fn rc_failure_rate_is_comparable_to_baseline_on_traces() {
        // At trace scale the prod/non-prod segregation wastes some
        // capacity while oversubscription adds some back; on a small
        // cluster the net effect is noisy, so only sanity-bound it here.
        // The full §6.2 comparison runs at paper scale in the bench
        // harness.
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let base = run(PolicyKind::Baseline, n, &reqs);
        let rc = run(PolicyKind::RcInformedSoft, n, &reqs);
        assert!(
            rc.failure_rate() <= base.failure_rate() * 2.0 + 0.01,
            "RC {} vs baseline {}",
            rc.failure_rate(),
            base.failure_rate()
        );
    }

    #[test]
    fn wrong_predictions_hurt_utilization_control() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let mut config = SimConfig {
            n_servers: n,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
            util_shift: 0.0,
            tick_stride: 6,
            obs_tick_secs: OBS_TICK_DAILY,
            accuracy: None,
        };
        let right = simulate(
            &reqs,
            &config,
            Box::new(OracleSource),
            (Timestamp::ZERO, Timestamp::from_days(18)),
        );
        config.scheduler = SchedulerConfig::new(PolicyKind::RcInformedSoft);
        let wrong = simulate(
            &reqs,
            &config,
            Box::new(WrongSource),
            (Timestamp::ZERO, Timestamp::from_days(18)),
        );
        assert!(
            wrong.readings_above_100 >= right.readings_above_100,
            "wrong {} vs right {}",
            wrong.readings_above_100,
            right.readings_above_100
        );
    }

    #[test]
    fn report_accounting_is_consistent() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let report = run(PolicyKind::NaiveOversub, n, &reqs);
        assert_eq!(report.n_arrivals, reqs.len() as u64);
        assert_eq!(report.n_servers, n as u64);
        assert!(report.n_failures <= report.n_arrivals);
        assert!(report.readings_above_100 <= report.total_readings);
        assert!(report.mean_util_fraction <= report.mean_alloc_fraction + 1e-9);
        assert!(report.failure_rate() <= 1.0);
        assert!(report.peak_live_vms <= report.n_arrivals);
    }

    #[test]
    fn merge_sums_counts_and_weights_means() {
        let reqs = requests();
        let n = suggest_server_count(&reqs, 16.0, 0.95);
        let solo = run(PolicyKind::Baseline, n, &reqs);
        let merged = SimReport::merge(&[solo.clone(), solo.clone()]);
        assert_eq!(merged.n_arrivals, 2 * solo.n_arrivals);
        assert_eq!(merged.n_servers, 2 * solo.n_servers);
        assert_eq!(merged.total_readings, 2 * solo.total_readings);
        assert!((merged.mean_alloc_fraction - solo.mean_alloc_fraction).abs() < 1e-12);
        assert!(
            (merged.mean_oversubscribable_servers - 2.0 * solo.mean_oversubscribable_servers).abs()
                < 1e-9
        );
    }

    #[test]
    fn streaming_server_count_matches_slice_version() {
        let reqs = requests();
        for headroom in [0.8, 0.95, 1.2] {
            assert_eq!(
                suggest_server_count_stream(reqs.iter().copied(), 16.0, headroom),
                suggest_server_count(&reqs, 16.0, headroom),
            );
        }
    }

    #[test]
    fn suggest_server_count_scales_with_headroom() {
        let reqs = requests();
        let tight = suggest_server_count(&reqs, 16.0, 0.8);
        let roomy = suggest_server_count(&reqs, 16.0, 1.2);
        assert!(tight < roomy);
        assert!(tight >= 1);
    }
}
