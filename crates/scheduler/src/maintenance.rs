//! Lifetime-aware server maintenance (§4.1).
//!
//! "When a server starts to misbehave, the health monitoring system can
//! query RC for the expected lifetime of the VMs running on the server.
//! It can thus determine when maintenance can be scheduled, and whether
//! VMs need to be live-migrated to enable maintenance without
//! unavailability."
//!
//! [`plan_maintenance`] turns per-VM lifetime predictions into a
//! [`MaintenancePlan`]: either wait for the residents to drain by a
//! bounded deadline, or name the VMs that must be live-migrated.

use rc_core::{ClientInputs, PredictionResponse, RcClient};
use rc_types::metrics::PredictionMetric;
use rc_types::time::{Duration, Timestamp};
use rc_types::vm::VmId;

/// A resident VM as the health manager sees it.
#[derive(Debug, Clone, Copy)]
pub struct ResidentVm {
    /// The VM.
    pub vm_id: VmId,
    /// When it was created (lifetime predictions are creation-relative).
    pub created: Timestamp,
    /// Client inputs for prediction requests.
    pub inputs: ClientInputs,
}

/// Why a VM was marked for migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationReason {
    /// Predicted to outlive the maintenance deadline.
    PredictedLongLived,
    /// RC produced no confident prediction; planned conservatively.
    NoConfidentPrediction,
    /// Already past its predicted drain time (prediction was at creation;
    /// the VM outlived its bucket's upper edge).
    OutlivedPrediction,
}

/// The health manager's decision for one server.
#[derive(Debug, Clone)]
pub struct MaintenancePlan {
    /// When the server is expected to be empty, if every VM drains.
    pub drain_by: Option<Timestamp>,
    /// VMs that must be live-migrated to meet the deadline.
    pub migrations: Vec<(VmId, MigrationReason)>,
    /// VMs predicted to drain on their own by the deadline.
    pub drains: Vec<VmId>,
}

impl MaintenancePlan {
    /// True when maintenance needs no live migration and no downtime.
    pub fn is_migration_free(&self) -> bool {
        self.migrations.is_empty()
    }
}

/// Upper edge of lifetime bucket `b`, or `None` for the open-ended one.
fn bucket_upper_edge(b: usize) -> Option<Duration> {
    match b {
        0 => Some(Duration::from_minutes(15)),
        1 => Some(Duration::from_minutes(60)),
        2 => Some(Duration::from_hours(24)),
        _ => None,
    }
}

/// Plans maintenance for a server's residents.
///
/// `now` is the decision time; `deadline` is the latest acceptable
/// maintenance start; `theta` is the confidence floor below which a
/// prediction is ignored (the §6.1 threshold is 0.6).
pub fn plan_maintenance(
    client: &RcClient,
    residents: &[ResidentVm],
    now: Timestamp,
    deadline: Timestamp,
    theta: f64,
) -> MaintenancePlan {
    let mut migrations = Vec::new();
    let mut drains = Vec::new();
    let mut latest_drain = now;
    for vm in residents {
        let response = client.predict_single(PredictionMetric::Lifetime.model_name(), &vm.inputs);
        let confident = match response {
            PredictionResponse::Predicted(p) if p.score >= theta => Some(p.value),
            _ => None,
        };
        match confident {
            None => migrations.push((vm.vm_id, MigrationReason::NoConfidentPrediction)),
            Some(bucket) => match bucket_upper_edge(bucket) {
                None => migrations.push((vm.vm_id, MigrationReason::PredictedLongLived)),
                Some(edge) => {
                    let drain_at = vm.created.plus(edge);
                    if drain_at <= now {
                        // The prediction's window already passed and the
                        // VM is still here — do not trust it further.
                        migrations.push((vm.vm_id, MigrationReason::OutlivedPrediction));
                    } else if drain_at > deadline {
                        migrations.push((vm.vm_id, MigrationReason::PredictedLongLived));
                    } else {
                        latest_drain = latest_drain.max(drain_at);
                        drains.push(vm.vm_id);
                    }
                }
            },
        }
    }
    MaintenancePlan {
        drain_by: if migrations.is_empty() && !drains.is_empty() {
            Some(latest_drain)
        } else if migrations.is_empty() {
            Some(now)
        } else {
            None
        },
        migrations,
        drains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::{ClientConfig, PipelineConfig, RcClient};
    use rc_store::Store;
    use rc_trace::{Trace, TraceConfig};

    fn world() -> (Trace, RcClient) {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 5_000,
            n_subscriptions: 200,
            days: 24,
            ..TraceConfig::small()
        });
        let output = rc_core::run_pipeline(&trace, &PipelineConfig::fast(24)).unwrap();
        let store = Store::in_memory();
        output.publish(&store, 0.5).unwrap();
        let client = RcClient::new(store, ClientConfig::default());
        assert!(client.initialize());
        (trace, client)
    }

    fn residents(trace: &Trace, now: Timestamp, n: usize) -> Vec<ResidentVm> {
        trace
            .vm_ids()
            .filter(|&id| trace.vm(id).alive_at(now))
            .take(n)
            .map(|id| ResidentVm {
                vm_id: id,
                created: trace.vm(id).created,
                inputs: rc_core::labels::vm_inputs(trace, id),
            })
            .collect()
    }

    #[test]
    fn plan_partitions_every_resident() {
        let (trace, client) = world();
        let now = Timestamp::from_days(20);
        let vms = residents(&trace, now, 20);
        assert!(!vms.is_empty());
        let plan = plan_maintenance(&client, &vms, now, now.plus(Duration::from_hours(24)), 0.6);
        assert_eq!(plan.migrations.len() + plan.drains.len(), vms.len());
        if plan.is_migration_free() {
            assert!(plan.drain_by.is_some());
        } else {
            assert!(plan.drain_by.is_none());
        }
    }

    #[test]
    fn tight_deadline_forces_migrations() {
        let (trace, client) = world();
        let now = Timestamp::from_days(20);
        let vms = residents(&trace, now, 20);
        let tight = plan_maintenance(&client, &vms, now, now, 0.6);
        let loose = plan_maintenance(&client, &vms, now, now.plus(Duration::from_days(2)), 0.6);
        assert!(
            tight.migrations.len() >= loose.migrations.len(),
            "tight {} vs loose {}",
            tight.migrations.len(),
            loose.migrations.len()
        );
    }

    #[test]
    fn drain_by_never_exceeds_deadline() {
        let (trace, client) = world();
        let now = Timestamp::from_days(20);
        let deadline = now.plus(Duration::from_hours(6));
        let vms = residents(&trace, now, 30);
        let plan = plan_maintenance(&client, &vms, now, deadline, 0.6);
        if let Some(t) = plan.drain_by {
            assert!(t <= deadline);
            assert!(t >= now);
        }
    }

    #[test]
    fn impossible_theta_migrates_everything() {
        let (trace, client) = world();
        let now = Timestamp::from_days(20);
        let vms = residents(&trace, now, 10);
        let plan = plan_maintenance(&client, &vms, now, now.plus(Duration::from_days(1)), 1.1);
        assert_eq!(plan.migrations.len(), vms.len());
        assert!(plan.migrations.iter().all(|(_, r)| *r == MigrationReason::NoConfidentPrediction));
    }
}
