//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! `syn`/`quote` are unavailable (no registry access), so the macro walks
//! the raw `TokenStream` directly. It supports exactly the shapes this
//! workspace uses — non-generic structs (named, tuple, unit) and
//! non-generic enums with unit, tuple, and struct variants — and produces
//! impls of the shim's `Serialize`/`Deserialize` traits following serde's
//! external-tagging conventions. Unsupported shapes (generics, unions)
//! panic at expansion time with a clear message rather than silently
//! producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list: named fields carry their identifiers, tuple
/// fields only an arity.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed item: its name plus either struct fields or enum variants.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// --- Parsing ---

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`, including doc comments) and a
/// visibility modifier (`pub`, `pub(...)`).
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-field body, skipping types. Commas
/// inside angle brackets (e.g. `HashMap<K, V>`) do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts top-level fields in a tuple-struct/-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = true;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token_since_comma = false;
            }
            _ => saw_token_since_comma = true,
        }
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// --- Code generation ---

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let pushes: String = names
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = \
                 Vec::with_capacity({});{pushes} ::serde::Value::Object(fields)",
                names.len()
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(","))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(obj, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::ty(\"{name}\", \"object\"))?; \
                 Ok({name} {{ {} }})",
                inits.join(",")
            )
        }
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::Error::ty(\"{name}\", \"array\"))?; \
                 if items.len() != {n} {{ return Err(::serde::Error::ty(\"{name}\", \
                 \"array of length {n}\")); }} \
                 Ok({name}({}))",
                items.join(",")
            )
        }
        Fields::Unit => format!("Ok({name})"),
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => {
                format!("{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),")
            }
            Fields::Tuple(1) => format!(
                "{name}::{v}(f0) => ::serde::Value::Object(vec![(String::from(\"{v}\"), \
                 ::serde::Serialize::to_value(f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let items: Vec<String> =
                    (0..*n).map(|k| format!("::serde::Serialize::to_value(f{k})")).collect();
                format!(
                    "{name}::{v}({}) => ::serde::Value::Object(vec![(String::from(\"{v}\"), \
                     ::serde::Value::Array(vec![{}]))]),",
                    binds.join(","),
                    items.join(",")
                )
            }
            Fields::Named(field_names) => {
                let binds = field_names.join(",");
                let pushes: Vec<String> = field_names
                    .iter()
                    .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\
                     String::from(\"{v}\"), ::serde::Value::Object(vec![{}]))]),",
                    pushes.join(",")
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }} }}",
        arms.join("")
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
            )),
            Fields::Tuple(n) => Some(format!(
                "\"{v}\" => {{ let items = inner.as_array().ok_or_else(|| \
                 ::serde::Error::ty(\"{name}::{v}\", \"array\"))?; \
                 if items.len() != {n} {{ return Err(::serde::Error::ty(\
                 \"{name}::{v}\", \"array of length {n}\")); }} \
                 Ok({name}::{v}({})) }},",
                (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect::<Vec<_>>()
                    .join(",")
            )),
            Fields::Named(field_names) => {
                let inits: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::field(obj, \"{f}\")?)?"
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{v}\" => {{ let obj = inner.as_object().ok_or_else(|| \
                     ::serde::Error::ty(\"{name}::{v}\", \"object\"))?; \
                     Ok({name}::{v} {{ {} }}) }},",
                    inits.join(",")
                ))
            }
        })
        .collect();
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ \
         match v {{ \
         ::serde::Value::Str(s) => match s.as_str() {{ {units} \
           other => Err(::serde::Error::msg(format!(\
             \"unknown variant `{{other}}` for {name}\"))), }}, \
         ::serde::Value::Object(fields) if fields.len() == 1 => {{ \
           let (tag, inner) = &fields[0]; \
           match tag.as_str() {{ {tagged} \
             other => Err(::serde::Error::msg(format!(\
               \"unknown variant `{{other}}` for {name}\"))), }} }}, \
         _ => Err(::serde::Error::ty(\"{name}\", \"string or single-key object\")), \
         }} }} }}",
        units = unit_arms.join(""),
        tagged = tagged_arms.join("")
    )
}
