//! In-tree stand-in for `proptest`.
//!
//! The [`proptest!`] macro expands each property into a plain `#[test]`
//! that draws [`test_runner::CASES`] deterministic random inputs from the
//! declared strategies and runs the body on each. Failing cases panic
//! with the drawn values via plain `assert!` formatting; there is no
//! shrinking — the RNG is seeded from the test name, so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use std::ops::Range;

/// Strategy evaluation: how to draw one value of `Self::Value`.
pub mod strategy {
    use super::*;

    /// A recipe for generating values of a type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Full-domain strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// A strategy drawing uniformly from `T`'s full domain.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rand::Rng::gen(rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element`-drawn values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test runner state.
pub mod test_runner {
    use super::*;
    use rand::SeedableRng;

    /// Cases drawn per property. The real crate defaults to 256; 64 keeps
    /// the whole suite fast while still sweeping each space broadly.
    pub const CASES: u32 = 64;

    /// A generator seeded from the test's name, so every run draws the
    /// same inputs and failures reproduce without a persistence file.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }

    /// Unused compatibility alias (the real crate passes a `TestRunner`
    /// into strategies; the shim passes the RNG directly).
    pub type TestRng = StdRng;
}

// RngCore is re-exported so generated code can thread generic bounds if
// a future property needs its own sampling.
pub use rand::rngs::StdRng as ShimRng;
#[doc(hidden)]
pub use rand::RngCore as _ShimRngCore;

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over [`test_runner::CASES`]
/// deterministic draws.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name));
                for __proptest_case in 0..$crate::test_runner::CASES {
                    let _ = __proptest_case;
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Property assertion; in this shim a plain `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn draws_stay_in_range(x in 5u64..10, y in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u32..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuple_strategy_draws_both(pair in (any::<u64>(), 0usize..4)) {
            let (_, small) = pair;
            prop_assert!(small < 4);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        let xs: Vec<u64> = (0..16).map(|_| strat.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| strat.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
