//! In-tree stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: the [`Rng`]/[`RngCore`] traits
//! (`gen`, `gen_range`), [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — not the real
//! crate's ChaCha12, so streams differ from upstream but are stable across
//! runs and platforms), and [`seq::SliceRandom::shuffle`].

use std::ops::Range;

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized {
    /// A uniform draw from `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u64) - (lo as u64);
                // Multiply-shift rejection-free mapping; span is tiny
                // relative to 2^64 everywhere this workspace samples, so
                // modulo bias is negligible — use 128-bit multiply to keep
                // it uniform anyway.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as i64).wrapping_add(draw as i64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + f32::draw(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s standard domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(range.start, range.end, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring the real crate's trait.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Statistically strong and fast; unlike the real crate's `StdRng`
    /// it makes no cryptographic claims, which nothing here needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A parameterized distribution samplable with any generator.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);

        let mut rng = StdRng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean of U[0,1) draws was {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left slice unchanged");
    }
}
