//! In-tree stand-in for `crossbeam`: scoped threads only, delegating to
//! `std::thread::scope` (stabilized long after crossbeam pioneered the
//! API). The crossbeam signature differs from std's in two ways this shim
//! papers over: the spawn closure receives the scope again (for nested
//! spawns), and `scope` returns a `Result` capturing child panics.

pub mod thread {
    use std::marker::PhantomData;

    /// Mirror of `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result; `Err` if it
        /// panicked.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope, so
        /// children can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope, _marker: PhantomData };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// Crossbeam returns `Err` with the panic payload if any *unjoined*
    /// child panicked. `std::thread::scope` instead resumes the panic on
    /// the parent, so this shim converts it back into an `Err` via
    /// `catch_unwind` to preserve callers' `.expect(...)` handling.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        // Crossbeam's `scope` has no `UnwindSafe` bound (the panic is
        // handed back as data, not resumed), so asserting unwind safety
        // here matches its contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s, _marker: PhantomData };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let result = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            7u32
        })
        .expect("no child panicked");
        assert_eq!(result, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
