//! In-tree stand-in for `crossbeam`: scoped threads (delegating to
//! `std::thread::scope`, stabilized long after crossbeam pioneered the
//! API), a bounded lock-free `queue::ArrayQueue`, and
//! `utils::CachePadded`. The scoped-thread signature differs from std's
//! in two ways this shim papers over: the spawn closure receives the
//! scope again (for nested spawns), and `scope` returns a `Result`
//! capturing child panics.

pub mod thread {
    use std::marker::PhantomData;

    /// Mirror of `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result; `Err` if it
        /// panicked.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope, so
        /// children can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope, _marker: PhantomData };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// Crossbeam returns `Err` with the panic payload if any *unjoined*
    /// child panicked. `std::thread::scope` instead resumes the panic on
    /// the parent, so this shim converts it back into an `Err` via
    /// `catch_unwind` to preserve callers' `.expect(...)` handling.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        // Crossbeam's `scope` has no `UnwindSafe` bound (the panic is
        // handed back as data, not resumed), so asserting unwind safety
        // here matches its contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s, _marker: PhantomData };
                f(&scope)
            })
        }))
    }
}

pub mod utils {
    /// Mirror of `crossbeam_utils::CachePadded`: aligns (and therefore
    /// pads) the wrapped value to a cache-line boundary so two hot
    /// atomics updated by different cores never share a line. 128 bytes
    /// covers the spatial-prefetcher pair on modern x86 as well as
    /// 128-byte-line ARM parts, matching the real crate's choice.
    #[repr(align(128))]
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in its own cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

pub mod queue {
    //! Mirror of `crossbeam_queue::ArrayQueue`: Dmitry Vyukov's bounded
    //! MPMC array queue. Each slot carries a sequence number; producers
    //! and consumers claim positions with a CAS on `tail`/`head` and
    //! hand slots off by advancing the slot's sequence, so a push and a
    //! pop on different slots never contend and a full/empty verdict is
    //! read from the slot itself (no separate length coordination).

    use super::utils::CachePadded;
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Slot<T> {
        /// Position parity: `seq == pos` means free for the producer at
        /// `pos`; `seq == pos + 1` means holding that producer's value;
        /// the consumer at `pos` releases it as `pos + capacity`.
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue.
    pub struct ArrayQueue<T> {
        head: CachePadded<AtomicUsize>,
        tail: CachePadded<AtomicUsize>,
        slots: Box<[Slot<T>]>,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `capacity` elements.
        ///
        /// # Panics
        /// Panics if `capacity` is zero.
        pub fn new(capacity: usize) -> ArrayQueue<T> {
            assert!(capacity > 0, "ArrayQueue capacity must be non-zero");
            let slots = (0..capacity)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                head: CachePadded::new(AtomicUsize::new(0)),
                tail: CachePadded::new(AtomicUsize::new(0)),
                slots,
            }
        }

        /// Attempts to enqueue `value`, handing it back if the queue is
        /// full (the backpressure signal).
        pub fn push(&self, value: T) -> Result<(), T> {
            let cap = self.slots.len();
            let mut pos = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos % cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq as isize - pos as isize;
                if diff == 0 {
                    // Free for this position: claim it.
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(current) => pos = current,
                    }
                } else if diff < 0 {
                    // The slot one lap behind hasn't been consumed yet:
                    // the queue is full.
                    return Err(value);
                } else {
                    // Another producer claimed this position; chase tail.
                    pos = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue, returning `None` when empty.
        pub fn pop(&self) -> Option<T> {
            let cap = self.slots.len();
            let mut pos = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos % cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq as isize - pos.wrapping_add(1) as isize;
                if diff == 0 {
                    // Holds the value for this position: claim it.
                    match self.head.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(pos.wrapping_add(cap), Ordering::Release);
                            return Some(value);
                        }
                        Err(current) => pos = current,
                    }
                } else if diff < 0 {
                    // The producer for this position hasn't finished:
                    // the queue is empty.
                    return None;
                } else {
                    // Another consumer claimed this position; chase head.
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Maximum number of elements the queue can hold.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Snapshot of the current element count (racy under
        /// concurrency, exact when quiesced).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            tail.wrapping_sub(head)
        }

        /// Whether the queue currently holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let result = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            7u32
        })
        .expect("no child panicked");
        assert_eq!(result, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn cache_padded_isolates_lines() {
        use super::utils::CachePadded;
        let pair = [CachePadded::new(AtomicU64::new(0)), CachePadded::new(AtomicU64::new(0))];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 128, "adjacent padded atomics {}B apart", b - a);
        assert_eq!(a % 128, 0, "padded value is line-aligned");
        pair[0].fetch_add(3, Ordering::Relaxed);
        assert_eq!(pair[0].load(Ordering::Relaxed), 3);
        assert_eq!(CachePadded::new(7u32).into_inner(), 7);
    }

    #[test]
    fn array_queue_fifo_and_backpressure() {
        use super::queue::ArrayQueue;
        let q = ArrayQueue::new(3);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            q.push(i).expect("space available");
        }
        assert_eq!(q.push(99), Err(99), "full queue hands the value back");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
        q.push(3).expect("slot freed by pop");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "empty queue yields None");
    }

    #[test]
    fn array_queue_wraps_many_laps() {
        use super::queue::ArrayQueue;
        let q = ArrayQueue::new(2);
        for lap in 0..1_000u64 {
            q.push(lap * 2).unwrap();
            q.push(lap * 2 + 1).unwrap();
            assert_eq!(q.pop(), Some(lap * 2));
            assert_eq!(q.pop(), Some(lap * 2 + 1));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn array_queue_drop_releases_remaining_values() {
        use super::queue::ArrayQueue;
        use std::sync::Arc;
        let probe = Arc::new(());
        let q = ArrayQueue::new(4);
        for _ in 0..3 {
            q.push(probe.clone()).unwrap();
        }
        assert_eq!(Arc::strong_count(&probe), 4);
        drop(q);
        assert_eq!(Arc::strong_count(&probe), 1, "queued values dropped with the queue");
    }

    #[test]
    fn array_queue_mpmc_transfers_every_value_once() {
        use super::queue::ArrayQueue;
        use std::sync::Arc;

        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: u64 = 2_000;

        let q = Arc::new(ArrayQueue::new(8));
        let produced_total = PRODUCERS as u64 * PER_PRODUCER;
        let consumed = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p * PER_PRODUCER + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..CONSUMERS {
            let q = q.clone();
            let consumed = consumed.clone();
            let sum = sum.clone();
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::SeqCst) < produced_total {
                    match q.pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::SeqCst);
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("clean exit");
        }
        assert_eq!(consumed.load(Ordering::SeqCst), produced_total);
        // Sum over 0..produced_total — every value arrived exactly once.
        assert_eq!(sum.load(Ordering::SeqCst), produced_total * (produced_total - 1) / 2);
        assert!(q.is_empty());
    }
}
