//! In-tree stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree to JSON bytes and parses JSON bytes back into it. Only the entry
//! points this workspace uses are provided (`to_vec`, `from_slice`,
//! `Error`).

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to JSON bytes. Fails only for non-finite floats,
/// which JSON cannot represent.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let value = Parser { bytes, pos: 0 }.parse_document()?;
    T::from_value(&value)
}

// --- Writer ---

fn write_value(v: &Value, out: &mut Vec<u8>) -> Result<(), Error> {
    match v {
        Value::Null => out.extend_from_slice(b"null"),
        Value::Bool(true) => out.extend_from_slice(b"true"),
        Value::Bool(false) => out.extend_from_slice(b"false"),
        Value::U64(n) => out.extend_from_slice(itoa(*n).as_bytes()),
        Value::I64(n) => {
            use std::io::Write;
            write!(out, "{n}").expect("write to Vec cannot fail");
        }
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error::msg("cannot serialize non-finite float as JSON"));
            }
            use std::io::Write;
            // `{}` is Rust's shortest round-trip float formatting; integral
            // values print without a fractional part ("5" not "5.0"), which
            // the numeric coercions on the parse side accept.
            write!(out, "{n}").expect("write to Vec cannot fail");
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_value(item, out)?;
            }
            out.push(b']');
        }
        Value::Object(fields) => {
            out.push(b'{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_string(k, out);
                out.push(b':');
                write_value(v, out)?;
            }
            out.push(b'}');
        }
    }
    Ok(())
}

fn itoa(mut n: u64) -> String {
    if n == 0 {
        return "0".to_string();
    }
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while n > 0 {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII").to_string()
}

fn write_string(s: &str, out: &mut Vec<u8>) {
    out.push(b'"');
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            '\u{08}' => out.extend_from_slice(b"\\b"),
            '\u{0c}' => out.extend_from_slice(b"\\f"),
            c if (c as u32) < 0x20 => {
                use std::io::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to Vec cannot fail");
            }
            c => {
                let mut utf8 = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
            }
        }
    }
    out.push(b'"');
}

// --- Parser ---

struct Parser<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(Error::msg("trailing characters after JSON document"));
        }
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::msg("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => self.parse_string().map(Value::Str),
            b't' => self.parse_keyword(b"true", Value::Bool(true)),
            b'f' => self.parse_keyword(b"false", Value::Bool(false)),
            b'n' => self.parse_keyword(b"null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &[u8], value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!("expected `,` or `}}` at offset {}", self.pos)))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error::msg(format!("expected string at offset {}", self.pos)));
        }
        self.pos += 1;
        let mut s = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::msg("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let high = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error::msg("unpaired surrogate in string"));
                                }
                            } else {
                                high
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                }
                _ => {
                    // Consume one UTF-8 sequence starting at `pos`.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::msg("unterminated string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated unicode escape"))?;
        self.pos += 4;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid unicode escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_value() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(5)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::I64(-2), Value::Null])),
            ("c".into(), Value::Str("x \"y\" \n z".into())),
            ("d".into(), Value::Bool(true)),
        ]);
        let bytes = to_vec(&v).unwrap();
        let back: Value = from_slice(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_non_finite_floats() {
        assert!(to_vec(&f64::NAN).is_err());
        assert!(to_vec(&f64::INFINITY).is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        let s: String = from_slice("\"\u{e9}\u{1f600}\"".as_bytes()).unwrap();
        assert_eq!(s, "\u{e9}\u{1f600}");
        // The same characters via \u escapes, including a surrogate pair.
        let escaped: String = from_slice(br#""\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(escaped, "\u{e9} \u{1f600}");
    }
}
