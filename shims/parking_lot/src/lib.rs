//! In-tree stand-in for `parking_lot`: wraps the std primitives behind
//! parking_lot's non-poisoning API (`lock()`/`read()`/`write()` return
//! guards directly). A poisoned std lock means a holder panicked; matching
//! parking_lot semantics, the lock is simply taken over.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
