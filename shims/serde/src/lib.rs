//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of serde's API it actually uses. Instead of serde's
//! visitor-based zero-copy design, serialization goes through an owned
//! [`Value`] tree: `Serialize` renders a value into the tree and
//! `Deserialize` rebuilds one from it. `serde_json` (also shimmed) maps
//! the tree to and from JSON text. The derive macros in `serde_derive`
//! generate impls against these traits using serde's external-tagging
//! conventions, so the wire format of derived types matches what the real
//! serde_json would produce for the same definitions.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both shimmed traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            Value::F64(n)
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) =>
            {
                Some(n as i64)
            }
            _ => None,
        }
    }
}

/// Serialization/deserialization error (shared with `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a free-form message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A type-mismatch error (`expected` while deserializing `what`).
    pub fn ty(what: &str, expected: &str) -> Self {
        Error { msg: format!("invalid value for {what}: expected {expected}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders a value into the [`Value`] tree.
pub trait Serialize {
    /// The value as a tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the tree, failing on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Marker matching serde's `DeserializeOwned` bound.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}

/// Mirror of serde's `de` module for `serde::de::DeserializeOwned` paths.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned, Error};
}

/// Looks a field up in an object's entries (derive-macro helper).
pub fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
}

// --- Primitive impls ---

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::ty(stringify!($t), "unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::ty(stringify!($t), "in-range integer"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::ty(stringify!($t), "integer"))?;
                <$t>::try_from(n).map_err(|_| Error::ty(stringify!($t), "in-range integer"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::ty("f64", "number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::ty("f32", "number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::ty("bool", "boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::ty("String", "string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// --- Container impls ---

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array().ok_or_else(|| Error::ty("Vec", "array"))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::ty("tuple", "2-element array")),
        }
    }
}

/// Maps serialize as arrays of `[key, value]` pairs: keys are arbitrary
/// serializable types, which JSON object keys could not represent.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Vec::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Ordered maps use the same `[key, value]`-pair encoding as
/// `HashMap`, but iteration — and therefore the serialized byte stream
/// — is key-ordered and deterministic.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Vec::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
