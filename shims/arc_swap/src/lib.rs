//! In-tree stand-in for `arc-swap`: an atomic `Arc<T>` slot whose readers
//! never block, built on `AtomicPtr` plus epoch-based deferred
//! reclamation.
//!
//! The real crate protects readers with a hybrid of hazard pointers and
//! generation counters; this shim uses the classic epoch scheme instead,
//! which is small enough to audit in one sitting:
//!
//! - A global epoch counter advances once per swap.
//! - Each reading thread owns one cache-line-padded *epoch slot*. To read,
//!   it publishes the current epoch in its slot (the *pin*), loads the
//!   pointer, uses it, and clears the slot (the *unpin*). Pinning is a
//!   handful of atomic operations — no locks, no allocation after the
//!   thread's first pin (which registers its slot).
//! - A writer swaps the pointer with one atomic `swap`, bumps the epoch,
//!   and moves the old `Arc` onto a retire list tagged with the
//!   pre-bump epoch. A retired entry is dropped only once every pinned
//!   slot has moved past its tag — at which point no reader can still
//!   hold the raw pointer. Reclamation is deferred, not waited for:
//!   writers never spin on readers, they just try to collect on each
//!   subsequent swap (and on drop).
//!
//! Safety argument, in terms of the `SeqCst` total order: a reader pins
//! epoch `e` and *verifies* the global epoch still equals `e` before
//! loading the pointer. If `e` is greater than a retirement's tag `t`,
//! the writer's epoch bump (`t -> t+1`) precedes the reader's verify,
//! which precedes its pointer load — so the reader observes the *new*
//! pointer and cannot touch the retired one. If `e <= t`, the reader's
//! slot store precedes its verify, which precedes the bump, which
//! precedes the writer's slot scan — so the scan observes the pin and
//! keeps the retirement. Either way no retired pointer is freed while a
//! reader that could dereference it is pinned.

use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Slot value meaning "no read in progress".
const IDLE: u64 = u64::MAX;

/// The global epoch. Starts above zero so a tag can never be confused
/// with "never swapped".
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// One reader thread's published epoch, alone on its cache line so
/// pinning threads don't false-share.
#[repr(align(128))]
#[derive(Debug)]
struct EpochSlot {
    epoch: AtomicU64,
}

/// All epoch slots ever registered (leaked, so writer scans can hold
/// plain `'static` references), plus a free list so short-lived threads
/// recycle slots instead of growing the registry forever.
struct SlotRegistry {
    slots: Mutex<Vec<&'static EpochSlot>>,
    free: Mutex<Vec<&'static EpochSlot>>,
}

fn registry() -> &'static SlotRegistry {
    static REGISTRY: OnceLock<SlotRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| SlotRegistry {
        slots: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
    })
}

/// The smallest epoch any thread is currently pinned at, or `u64::MAX`
/// when no reader is active.
fn min_pinned_epoch() -> u64 {
    let slots = registry().slots.lock().expect("slot registry lock");
    slots.iter().map(|s| s.epoch.load(Ordering::SeqCst)).min().unwrap_or(IDLE)
}

/// Returns this thread's slot, registering one on first use (the only
/// allocation a reader ever performs).
struct ThreadSlot {
    slot: &'static EpochSlot,
    /// Reentrancy depth: nested pins keep the outermost (oldest) epoch,
    /// so an inner critical section can never un-protect an outer one.
    depth: Cell<usize>,
}

impl ThreadSlot {
    fn acquire() -> ThreadSlot {
        let reg = registry();
        let slot = reg.free.lock().expect("slot free list").pop().unwrap_or_else(|| {
            let slot: &'static EpochSlot =
                Box::leak(Box::new(EpochSlot { epoch: AtomicU64::new(IDLE) }));
            reg.slots.lock().expect("slot registry lock").push(slot);
            slot
        });
        ThreadSlot { slot, depth: Cell::new(0) }
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        self.slot.epoch.store(IDLE, Ordering::SeqCst);
        registry().free.lock().expect("slot free list").push(self.slot);
    }
}

thread_local! {
    static THREAD_SLOT: ThreadSlot = ThreadSlot::acquire();
}

/// Unpins on drop, so a panicking reader closure cannot leave its slot
/// pinned forever (which would stall reclamation process-wide).
struct PinGuard<'a> {
    slot: &'a EpochSlot,
    depth: &'a Cell<usize>,
}

impl<'a> PinGuard<'a> {
    fn pin(ts: &'a ThreadSlot) -> PinGuard<'a> {
        if ts.depth.get() == 0 {
            // Publish the epoch, then verify it did not move: if a writer
            // bumped it in between, re-publish so the slot is never
            // pinned at an epoch older than the pointer we will load.
            loop {
                let e = EPOCH.load(Ordering::SeqCst);
                ts.slot.epoch.store(e, Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        ts.depth.set(ts.depth.get() + 1);
        PinGuard { slot: ts.slot, depth: &ts.depth }
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        let d = self.depth.get() - 1;
        self.depth.set(d);
        if d == 0 {
            self.slot.epoch.store(IDLE, Ordering::SeqCst);
        }
    }
}

/// An `Arc<T>` that can be read without locking and replaced atomically.
///
/// Readers use [`ArcSwap::with`] (borrow the current value for the span
/// of a closure, zero allocation) or [`ArcSwap::load_full`] (clone the
/// `Arc` out). Writers use [`ArcSwap::store`] / [`ArcSwap::swap`]; they
/// serialize against each other on a small internal mutex, but never
/// against readers.
pub struct ArcSwap<T> {
    ptr: AtomicPtr<T>,
    /// Replaced values awaiting a grace period, each tagged with the
    /// epoch at which it was retired. Guarded by a mutex that also
    /// serializes writers, so the pointer history is totally ordered.
    retired: Mutex<Vec<(*const T, u64)>>,
}

// The raw pointers in `retired` are only dereferenced to drop them after
// a grace period; they originate from `Arc<T>`, so the usual Arc bounds
// make cross-thread use sound.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a slot holding `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// From a value directly.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Borrows the current value for the span of `f`, pinned — the
    /// borrow stays valid even if a writer swaps concurrently. No locks,
    /// no allocation (after the calling thread's first ever pin).
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        THREAD_SLOT.with(|ts| {
            let _pin = PinGuard::pin(ts);
            let p = self.ptr.load(Ordering::SeqCst);
            f(unsafe { &*p })
        })
    }

    /// Clones the current `Arc` out (an atomic refcount bump inside the
    /// pinned section — still no locks and no heap allocation).
    pub fn load_full(&self) -> Arc<T> {
        THREAD_SLOT.with(|ts| {
            let _pin = PinGuard::pin(ts);
            let p = self.ptr.load(Ordering::SeqCst);
            unsafe {
                Arc::increment_strong_count(p);
                Arc::from_raw(p)
            }
        })
    }

    /// Publishes `new`, retiring the previous value for deferred drop.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publishes `new` and returns the previous value. The returned
    /// `Arc` is a fresh reference; the reference the slot held is
    /// retired internally until in-flight readers move on.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let mut retired = self.retired.lock().expect("arc-swap retire list");
        let new_ptr = Arc::into_raw(new) as *mut T;
        let old = self.ptr.swap(new_ptr, Ordering::SeqCst);
        // Readers pinned at or below this tag may still hold `old`.
        let tag = EPOCH.fetch_add(1, Ordering::SeqCst);
        let result = unsafe {
            Arc::increment_strong_count(old);
            Arc::from_raw(old)
        };
        retired.push((old as *const T, tag));
        Self::collect_locked(&mut retired);
        result
    }

    /// Attempts to reclaim retired values whose grace period has
    /// elapsed. Writers call this opportunistically on every swap; it is
    /// public so embedders can nudge reclamation from a maintenance path.
    pub fn collect(&self) {
        Self::collect_locked(&mut self.retired.lock().expect("arc-swap retire list"));
    }

    /// Retired values still awaiting their grace period.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().expect("arc-swap retire list").len()
    }

    fn collect_locked(retired: &mut Vec<(*const T, u64)>) {
        if retired.is_empty() {
            return;
        }
        let min_pinned = min_pinned_epoch();
        retired.retain(|&(p, tag)| {
            if min_pinned > tag {
                unsafe { drop(Arc::from_raw(p)) };
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // Exclusive access: no reader can be pinned on *this* slot any
        // more, so the current pointer and every retired entry can be
        // dropped unconditionally (readers of other ArcSwaps never saw
        // these pointers).
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst))) };
        for (p, _) in self.retired.get_mut().expect("arc-swap retire list").drain(..) {
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.with(|v| f.debug_tuple("ArcSwap").field(v).finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts drops so reclamation is observable.
    struct DropProbe(u64, Arc<AtomicUsize>);

    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.1.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn with_sees_latest_store() {
        let slot = ArcSwap::from_pointee(1u64);
        assert_eq!(slot.with(|v| *v), 1);
        slot.store(Arc::new(2));
        assert_eq!(slot.with(|v| *v), 2);
        assert_eq!(*slot.load_full(), 2);
    }

    #[test]
    fn swap_returns_previous_value() {
        let slot = ArcSwap::from_pointee(10u64);
        let old = slot.swap(Arc::new(20));
        assert_eq!(*old, 10);
        assert_eq!(slot.with(|v| *v), 20);
    }

    #[test]
    fn retired_values_reclaim_once_readers_leave() {
        let drops = Arc::new(AtomicUsize::new(0));
        let slot = ArcSwap::from_pointee(DropProbe(0, drops.clone()));
        for i in 1..=5u64 {
            slot.store(Arc::new(DropProbe(i, drops.clone())));
        }
        // No reader is pinned, so at most the freshly retired entry from
        // the final store survives the opportunistic collect.
        slot.collect();
        assert_eq!(slot.retired_len(), 0, "all replaced values reclaimed");
        assert_eq!(drops.load(Ordering::SeqCst), 5);
        drop(slot);
        assert_eq!(drops.load(Ordering::SeqCst), 6, "drop frees the resident value");
    }

    #[test]
    fn load_full_keeps_value_alive_past_swap() {
        let drops = Arc::new(AtomicUsize::new(0));
        let slot = ArcSwap::from_pointee(DropProbe(1, drops.clone()));
        let held = slot.load_full();
        slot.store(Arc::new(DropProbe(2, drops.clone())));
        slot.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "held Arc pins the old value");
        assert_eq!(held.0, 1);
        drop(held);
        slot.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_keep_outer_borrow_protected() {
        let slot = ArcSwap::from_pointee(7u64);
        let other = ArcSwap::from_pointee(8u64);
        let sum = slot.with(|a| other.with(|b| a + b));
        assert_eq!(sum, 15);
    }

    #[test]
    fn concurrent_readers_never_observe_freed_values() {
        // Writer flips between generations while readers hammer `with`;
        // every observed value must be internally consistent (the probe
        // id equals the id the generation was built with).
        let drops = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(ArcSwap::from_pointee(DropProbe(0, drops.clone())));
        let stop = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let slot = slot.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut seen_max = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    slot.with(|v| {
                        assert!(v.0 <= 10_000, "garbage read: {}", v.0);
                        // Generations are monotone: a reader can lag but
                        // never travel back in time within one thread.
                        assert!(v.0 >= seen_max, "time went backwards");
                        seen_max = v.0;
                    });
                }
            }));
        }
        for gen in 1..=2_000u64 {
            slot.store(Arc::new(DropProbe(gen, drops.clone())));
        }
        stop.store(1, Ordering::SeqCst);
        for r in readers {
            r.join().expect("reader clean exit");
        }
        slot.collect();
        // Everything except the resident generation is reclaimed.
        assert_eq!(slot.retired_len(), 0);
        assert_eq!(drops.load(Ordering::SeqCst), 2_000);
        assert_eq!(slot.with(|v| v.0), 2_000);
    }

    #[test]
    fn slots_recycle_across_thread_lifetimes() {
        let slot = Arc::new(ArcSwap::from_pointee(0u64));
        let before = registry().slots.lock().unwrap().len();
        for _ in 0..64 {
            let slot = slot.clone();
            std::thread::spawn(move || slot.with(|v| *v)).join().unwrap();
        }
        let after = registry().slots.lock().unwrap().len();
        // Sequential short-lived threads reuse the freed slot instead of
        // registering 64 new ones.
        assert!(after <= before + 2, "slot registry grew from {before} to {after}");
    }
}
