//! In-tree stand-in for the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<[u8]>`. Clones share the
//! allocation (O(1)), matching the property the store relies on when
//! handing the same record to many readers.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[] as &[u8]) }
    }

    /// Wraps a static slice (no copy in the real crate; here one Arc
    /// allocation — the call sites are tests).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Bytes { data: Arc::from(vec) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}
