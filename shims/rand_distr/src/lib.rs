//! In-tree stand-in for `rand_distr`: just the [`Weibull`] distribution
//! (used by the trace generator's deployment inter-arrival model) and a
//! re-export of the shim `rand`'s [`Distribution`] trait.

use rand::{Rng, RngCore};

pub use rand::distributions::Distribution;

/// Construction error for invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Scale was not strictly positive and finite.
    ScaleInvalid,
    /// Shape was not strictly positive and finite.
    ShapeInvalid,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ScaleInvalid => write!(f, "Weibull scale must be positive and finite"),
            Error::ShapeInvalid => write!(f, "Weibull shape must be positive and finite"),
        }
    }
}

impl std::error::Error for Error {}

/// The Weibull distribution, `scale * (-ln U)^(1/shape)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    inv_shape: f64,
}

impl Weibull {
    /// Builds the distribution, validating both parameters.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(Error::ScaleInvalid);
        }
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(Error::ShapeInvalid);
        }
        Ok(Weibull { scale, inv_shape: 1.0 / shape })
    }
}

impl Distribution<f64> for Weibull {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: F^-1(u) = scale * (-ln(1-u))^(1/shape); 1-u and u
        // are identically distributed, and clamping away from 0 avoids
        // ln(0) = -inf on the (measure-zero) draw u = 0.
        let u: f64 = rng.gen::<f64>().max(1e-300);
        self.scale * (-u.ln()).powf(self.inv_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -2.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_matches_exponential_mean() {
        // Weibull(scale, 1) is Exponential(1/scale): mean == scale.
        let w = Weibull::new(3.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
    }
}
