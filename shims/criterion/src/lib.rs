//! In-tree stand-in for `criterion`.
//!
//! Keeps the macro/builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`) but replaces the
//! statistical machinery with a simple auto-calibrated timing loop:
//! each benchmark runs `sample_size` samples, every sample executes a
//! batch sized so one batch takes ≳1ms, and the median/min/max per-call
//! times are printed. No HTML reports, no outlier analysis.

use std::time::{Duration, Instant};

/// How to amortize setup cost in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Run setup before every routine call (setup excluded from timing).
    PerIteration,
    /// Treated like `PerIteration` in this shim.
    SmallInput,
    /// Treated like `PerIteration` in this shim.
    LargeInput,
}

/// Re-export position matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { sample_size: self.sample_size, samples_ns: Vec::new() };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { sample_size: self.sample_size, _criterion: self }
    }
}

/// A group of related benchmarks (prefix printing only in this shim).
pub struct BenchmarkGroup<'c> {
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { sample_size: self.sample_size, samples_ns: Vec::new() };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Ends the group (no-op; matches the real API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` in an auto-calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find a batch size where one batch takes >= ~1ms so
        // Instant overhead stays well under 0.1%.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 8;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` with a fresh untimed `setup` product per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup runs outside the timed span, so no batch calibration:
        // each sample times `inner` routine calls individually.
        let inner = 16u32;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..inner {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total += start.elapsed();
            }
            self.samples_ns.push(total.as_nanos() as f64 / inner as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{name:<40} median {} (min {}, max {})",
            format_ns(median),
            format_ns(min),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group; supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the config form with
/// `name`/`config`/`targets` fields.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
    }

    #[test]
    fn runs_a_group_end_to_end() {
        let mut criterion = Criterion::default().sample_size(5);
        trivial_bench(&mut criterion);
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }
}
