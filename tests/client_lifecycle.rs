//! Client lifecycle and concurrency regressions: shutdown on concurrent
//! facade drops, exact sharded-cache statistics under multi-threaded
//! load, and `store_fallbacks` counting only real store-pull failures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration as StdDuration;

use rc_core::labels::vm_inputs;
use rc_types::vm::SubscriptionId;
use resource_central::prelude::*;

fn world() -> (Trace, Store) {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 5_000,
        n_subscriptions: 200,
        days: 24,
        ..TraceConfig::small()
    });
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24)).unwrap();
    let store = Store::in_memory();
    output.publish(&store, 0.5).unwrap();
    (trace, store)
}

/// Regression: `Drop` used to infer "last facade" from a racy
/// `Arc::strong_count` heuristic; two clones dropped concurrently could
/// both observe a high count, neither would signal shutdown, and the
/// pull-worker/push-watcher threads leaked forever. The explicit facade
/// count makes exactly one drop the shutdown owner, and that drop joins
/// the workers — so after the last facade is gone, zero worker threads
/// remain, deterministically.
#[test]
fn concurrent_facade_drops_always_stop_workers() {
    let store = Store::in_memory();
    for round in 0..40 {
        let config = ClientConfig {
            mode: CacheMode::Pull,
            auto_refresh_interval: Some(StdDuration::from_millis(5)),
            ..ClientConfig::default()
        };
        let client = RcClient::new(store.clone(), config);
        let lifecycle = client.worker_lifecycle();
        assert_eq!(lifecycle.live(), 2, "pull worker + push watcher running");

        // Drop every facade simultaneously from racing threads.
        let clones: Vec<RcClient> = (0..4).map(|_| client.clone()).collect();
        drop(client);
        let barrier = Arc::new(Barrier::new(clones.len()));
        let handles: Vec<_> = clones
            .into_iter()
            .map(|facade| {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    drop(facade);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lifecycle.live(), 0, "round {round}: worker threads leaked");
    }
}

/// Regression: `fetch_model` bumped `store_fallbacks` on *every*
/// pull-mode fetch, even when the store pull succeeded. Only the actual
/// fall-back-to-disk path (store pull failed) may count.
#[test]
fn store_fallbacks_counts_only_failed_store_pulls() {
    let (trace, store) = world();
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24)).unwrap();
    let config = ClientConfig { mode: CacheMode::Pull, ..ClientConfig::default() };
    let client = RcClient::new(store.clone(), config);
    assert!(client.initialize());

    // Publish a model under a name the client has not cached, so the
    // pull worker takes the fetch_model path — and succeeds at the store.
    store.put("model/CUSTOM", rc_ml::to_bytes(&output.models[0]).into()).unwrap();
    let inputs = vm_inputs(&trace, VmId(3));
    assert_eq!(client.predict_single("CUSTOM", &inputs), PredictionResponse::NoPrediction);
    client.drain_pull_queue();
    assert!(
        client.predict_single("CUSTOM", &inputs).is_predicted(),
        "background fetch should have cached the published model"
    );
    assert_eq!(
        client.store_fallback_count(),
        0,
        "a successful store pull must not count as a fallback"
    );

    // Now a fetch whose store pull fails: the fallback path must count.
    store.set_available(false);
    assert_eq!(client.predict_single("CUSTOM2", &inputs), PredictionResponse::NoPrediction);
    client.drain_pull_queue();
    assert_eq!(client.store_fallback_count(), 1, "failed store pull is exactly one fallback");
}

/// Satellite: ≥4 threads hammering `predict_single` across shards while
/// the push watcher refreshes the caches underneath them. No lost
/// updates: `hits + misses` equals the exact number of lookups issued,
/// insert/eviction counters reconcile, and every thread gets served.
#[test]
fn hammering_threads_never_lose_cache_counts() {
    let (trace, store) = world();
    let config = ClientConfig {
        auto_refresh_interval: Some(StdDuration::from_millis(20)),
        result_cache_shards: 8,
        ..ClientConfig::default()
    };
    let client = RcClient::new(store.clone(), config);
    assert!(client.initialize());
    assert_eq!(client.result_cache_shards(), 8);

    let n_threads = 6u64;
    let per_thread = 500u64;
    let served_total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(n_threads as usize));
    let mut handles = Vec::new();
    for t in 0..n_threads {
        let c = client.clone();
        let barrier = barrier.clone();
        let served_total = served_total.clone();
        let metric = PredictionMetric::ALL[(t % 6) as usize];
        let inputs: Vec<_> = (0..per_thread)
            .map(|i| vm_inputs(&trace, VmId((t * 37 + i * 11) % trace.n_vms() as u64)))
            .collect();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut served = 0u64;
            for inp in &inputs {
                if c.predict_single(metric.model_name(), inp).is_predicted() {
                    served += 1;
                }
            }
            served_total.fetch_add(served, Ordering::SeqCst);
            served
        }));
    }

    // Republish feature data mid-hammering so the watcher refreshes (and
    // clears the result cache) underneath the predicting threads.
    for sub in 0..3u32 {
        let features = rc_core::SubscriptionFeatures::new(SubscriptionId(900_000 + sub));
        store
            .put(
                &rc_core::feature_store_key(SubscriptionId(900_000 + sub)),
                serde_json::to_vec(&features).unwrap().into(),
            )
            .unwrap();
        std::thread::sleep(StdDuration::from_millis(30));
    }

    let mut all_served = true;
    for h in handles {
        all_served &= h.join().unwrap() > 0;
    }
    assert!(all_served, "every thread must be served at least once");

    let stats = client.result_cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        n_threads * per_thread,
        "every lookup counted exactly once across shards"
    );
    // Push-mode misses insert if (and only if) the model executed; both
    // counters are per-shard-exact, so they must reconcile.
    assert_eq!(stats.insertions, client.model_exec_count(), "insert per model execution");
    assert!(stats.insertions <= stats.misses, "inserts only happen on misses");
    assert!(served_total.load(Ordering::SeqCst) > 0);

    // The watcher runs on its own clock; give it a moment to notice the
    // republished feature data before asserting it refreshed.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    while client.background_refresh_count() == 0 {
        assert!(std::time::Instant::now() < deadline, "watcher never refreshed");
        std::thread::sleep(StdDuration::from_millis(10));
    }
}
