//! Pipeline hardening: the failure modes ISSUE 5 guards against.
//!
//! - **Torn publishes**: a store failure at *every* write index of a
//!   publication leaves the previous version fully readable and the
//!   manifest never pointing at a partial version.
//! - **Rollback**: `rc_store::rollback` restores `last_good` and a
//!   reloading client serves it.
//! - **Dirty telemetry**: a `DirtyPlan`-corrupted trace is quarantined
//!   with exact per-category accounting, reconcilable from registry
//!   deltas, bit-identical across same-seed runs (`RC_DIRTY_SEED` picks
//!   the seed; CI runs two).
//! - **Blocked publications**: an ε-regression blocks the flip and leaves
//!   the store byte-identical.
//! - **Poisoned models**: payloads failing checksum or slot-identity
//!   checks are rejected by the client while the resident model keeps
//!   serving.
//! - **Metric quarantine**: one metric's failed training quarantines only
//!   that metric; the other five publish and drive the scheduler
//!   end-to-end.
//!
//! The rc-obs registry is process-global, so every test takes one mutex
//! and measures counter deltas inside the critical section.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use bytes::Bytes;
use rc_core::labels::vm_inputs;
use rc_core::{ModelSpec, PipelineError, PublishGate};
use rc_scheduler::RcSource;
use rc_store::{
    checksum, rollback, Manifest, ModelEntry, StoreError, VersionedRecord, MANIFEST_KEY,
};
use rc_trace::{trace_fingerprint, DirtyPlan};
use rc_types::time::Timestamp;
use resource_central::prelude::*;

/// Serializes the tests in this binary: they assert global-registry
/// deltas.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn world() -> &'static (Trace, PipelineOutput) {
    static WORLD: OnceLock<(Trace, PipelineOutput)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 5_000,
            n_subscriptions: 200,
            days: 24,
            ..TraceConfig::small()
        });
        let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24)).unwrap();
        (trace, output)
    })
}

/// A pipeline run with one metric's training deterministically failing,
/// plus the exact `rc_pipeline_metric_quarantined` delta it caused.
/// Callers hold [`GATE`], so the delta is attributable.
fn degraded() -> &'static (PipelineOutput, u64) {
    static DEGRADED: OnceLock<(PipelineOutput, u64)> = OnceLock::new();
    DEGRADED.get_or_init(|| {
        let (trace, _) = world();
        let before = rc_obs::global().counter(rc_obs::PIPELINE_METRIC_QUARANTINED).get();
        let config = rc_core::PipelineConfig {
            fail_train: vec![PredictionMetric::WorkloadClass],
            ..rc_core::PipelineConfig::fast(24)
        };
        let output = rc_core::run_pipeline(trace, &config).expect("five metrics survive");
        let delta = rc_obs::global().counter(rc_obs::PIPELINE_METRIC_QUARANTINED).get() - before;
        (output, delta)
    })
}

/// The corruption seed; CI runs the suite twice with `RC_DIRTY_SEED=1` / `=2`.
fn dirty_seed() -> u64 {
    std::env::var("RC_DIRTY_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xD127_5017)
}

/// A [`StoreBackend`] that fails exactly one `put` — the `fail_at`-th —
/// so the torn-publish sweep can sever a publication at every write
/// index in turn.
struct FailAt {
    inner: Store,
    fail_at: u64,
    puts: AtomicU64,
}

impl FailAt {
    fn new(inner: Store, fail_at: u64) -> Self {
        FailAt { inner, fail_at, puts: AtomicU64::new(0) }
    }
}

impl StoreBackend for FailAt {
    fn is_available(&self) -> bool {
        self.inner.is_available()
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError> {
        self.inner.get_latest(key)
    }

    fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError> {
        self.inner.get_version(key, version)
    }

    fn latest_version(&self, key: &str) -> Option<u64> {
        self.inner.latest_version(key)
    }

    fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError> {
        if self.puts.fetch_add(1, Ordering::SeqCst) == self.fail_at {
            return Err(StoreError::Transient);
        }
        self.inner.put(key, data)
    }
}

/// Every payload the manifest points at is present with the recorded
/// checksum — the version is fully readable, not partially written.
fn assert_version_intact(store: &Store, m: &Manifest) {
    for entry in &m.models {
        let rec = store
            .get_latest(&m.versioned_key(&entry.key))
            .unwrap_or_else(|e| panic!("model {} unreadable: {e}", entry.key));
        assert_eq!(checksum(&rec.data), entry.checksum, "model {} corrupt", entry.key);
    }
    for entry in &m.features {
        let rec = store
            .get_latest(&m.versioned_key(&entry.key))
            .unwrap_or_else(|e| panic!("feature {} unreadable: {e}", entry.key));
        assert_eq!(checksum(&rec.data), entry.checksum, "feature {} corrupt", entry.key);
    }
}

#[test]
fn torn_publish_at_every_write_index_leaves_last_good_serving() {
    let _gate = gate();
    let (trace, output) = world();

    // Count the writes one re-publication performs, through a wrapper
    // that never fires.
    let probe_store = Store::in_memory();
    output.publish(&probe_store, 0.5).expect("v1");
    let probe = FailAt::new(probe_store.clone(), u64::MAX);
    output.publish(&probe, 0.5).expect("v2 probe");
    let n_writes = probe.puts.load(Ordering::SeqCst);
    // Phase one: every model and feature payload; phase two: the flip.
    assert_eq!(n_writes as usize, output.models.len() + output.feature_data.len() + 1);

    for fail_at in 0..n_writes {
        let store = Store::in_memory();
        output.publish(&store, 0.5).expect("v1");
        let m1 = Manifest::read_current(&store).unwrap().expect("v1 manifest");

        let torn = FailAt::new(store.clone(), fail_at);
        let err = output.publish(&torn, 0.5).unwrap_err();
        assert!(
            matches!(err, PipelineError::StoreFailed(StoreError::Transient)),
            "write {fail_at}: unexpected error {err}"
        );

        // The manifest never moved, and everything it points at is intact.
        let current = Manifest::read_current(&store).unwrap().expect("manifest survives");
        assert_eq!(current, m1, "manifest moved after a torn publish at write {fail_at}");
        assert_version_intact(&store, &m1);

        // Mid-phase-one representative: a cold client still comes up on
        // the previous version and serves predictions.
        if fail_at == n_writes / 2 {
            let client = RcClient::new(store.clone(), ClientConfig::default());
            assert!(client.initialize(), "client must initialize on last_good");
            assert_eq!(client.manifest_version(), Some(1));
            assert_eq!(client.get_available_models().len(), 6);
            let served = (0..trace.n_vms() as u64)
                .map(|id| vm_inputs(trace, VmId(id)))
                .any(|inputs| client.predict_single("VM_P95UTIL", &inputs).is_predicted());
            assert!(served, "last_good stopped serving after a torn publish");
        }
    }

    // A retry on a store holding a torn attempt's garbage still lands a
    // complete v2: the partial writes were never reachable.
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("v1");
    let torn = FailAt::new(store.clone(), n_writes / 3);
    output.publish(&torn, 0.5).unwrap_err();
    let v2 = output.publish(&store, 0.5).expect("retry lands");
    assert_eq!(v2, 2);
    let m2 = Manifest::read_current(&store).unwrap().expect("v2 manifest");
    assert_eq!((m2.version, m2.last_good), (2, 1));
    assert_version_intact(&store, &m2);
}

#[test]
fn publish_through_a_faulty_store_never_exposes_a_partial_version() {
    let _gate = gate();
    let (_, output) = world();
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("v1");
    let m1 = Manifest::read_current(&store).unwrap().expect("v1 manifest");

    // Realistic fault mix (no corruption: the publish read-path has no
    // checksum retry loop, and a corrupt manifest read would be modelled
    // as a fresh store). Publish keeps failing until a fault-free window;
    // after every failure the published version must be whole.
    let faulty = FaultyStore::new(
        store.clone(),
        FaultPlan {
            seed: dirty_seed(),
            p_unavailable: 0.02,
            p_transient: 0.01,
            transient_burst: 2,
            p_latency_spike: 0.0,
            latency_spike: std::time::Duration::ZERO,
            p_corrupt: 0.0,
        },
    );
    let mut attempts = 0u32;
    let version = loop {
        attempts += 1;
        assert!(attempts <= 500, "publish never landed through the faulty store");
        match output.publish(&faulty, 0.5) {
            Ok(v) => break v,
            Err(PipelineError::StoreFailed(e)) => {
                assert!(e.is_retryable(), "non-retryable mid-publish error: {e}");
                let current = Manifest::read_current(&store).unwrap().expect("manifest");
                assert_eq!(current, m1, "a failed publish moved the manifest");
                assert_version_intact(&store, &m1);
            }
            Err(other) => panic!("unexpected publish error: {other}"),
        }
    };
    assert_eq!(version, 2);
    let m2 = Manifest::read_current(&store).unwrap().expect("v2 manifest");
    assert_eq!((m2.version, m2.last_good), (2, 1));
    assert_version_intact(&store, &m2);
}

#[test]
fn rollback_restores_last_good_and_the_client_serves_it() {
    let _gate = gate();
    let (trace, output) = world();
    let (degraded_output, _) = degraded();

    // v1 publishes all six models; v2 only the five survivors.
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("v1: six models");
    degraded_output
        .publish_gated(&store, PublishGate { min_accuracy: 0.5, max_regression: 1.0 })
        .expect("v2: five models");

    let client = RcClient::new(store.clone(), ClientConfig::default());
    assert!(client.initialize());
    assert_eq!(client.manifest_version(), Some(2));
    assert_eq!(client.get_available_models().len(), 5);

    // The bad publication is noticed; operations rolls back.
    let rollbacks0 = rc_obs::global().counter(rc_obs::PIPELINE_ROLLBACKS).get();
    let restored = rollback(&store).expect("rollback to v1");
    assert_eq!(restored, 1);
    assert_eq!(rc_obs::global().counter(rc_obs::PIPELINE_ROLLBACKS).get() - rollbacks0, 1);
    let current = Manifest::read_current(&store).unwrap().expect("manifest");
    assert_eq!(current.version, 1);
    assert_eq!(current.models.len(), 6);
    assert_version_intact(&store, &current);

    // A reloading client picks the restored version up and the
    // previously-missing model serves again.
    client.force_reload_cache();
    assert_eq!(client.manifest_version(), Some(1));
    let models = client.get_available_models();
    assert_eq!(models.len(), 6, "rollback must restore the quarantined model: {models:?}");
    let name = PredictionMetric::WorkloadClass.model_name();
    let served = (0..trace.n_vms() as u64)
        .map(|id| vm_inputs(trace, VmId(id)))
        .any(|inputs| client.predict_single(name, &inputs).is_predicted());
    assert!(served, "the restored {name} model must serve predictions");

    // v1 has nothing earlier to fall back to.
    assert!(matches!(rollback(&store), Err(rc_store::RollbackError::NoLastGood)));
}

#[test]
fn rollback_chain_walks_history_and_bottoms_out_with_a_typed_error() {
    let _gate = gate();
    let (_, output) = world();

    // Three publications: v3 serves, last_good chains 3 → 2 → 1 → ∅.
    let store = Store::in_memory();
    for version in 1..=3u64 {
        output.publish(&store, 0.5).expect("publish");
        let m = Manifest::read_current(&store).unwrap().expect("manifest");
        assert_eq!((m.version, m.last_good), (version, version - 1));
    }

    // Each rollback steps one link down the chain, re-serving the
    // retained manifest for that version.
    assert_eq!(rollback(&store).expect("v3 -> v2"), 2);
    let m = Manifest::read_current(&store).unwrap().expect("manifest");
    assert_eq!((m.version, m.last_good), (2, 1));
    assert!(m.can_rollback());
    assert_eq!(rollback(&store).expect("v2 -> v1"), 1);
    let m = Manifest::read_current(&store).unwrap().expect("manifest");
    assert_eq!((m.version, m.last_good), (1, 0));

    // The chain bottom: a typed refusal, not a panic or a sentinel
    // chase, and the store is byte-untouched by the failed attempt.
    assert!(!m.can_rollback(), "the first publication advertises no fallback");
    let fp = rc_store::fingerprint(&store);
    assert_eq!(rollback(&store), Err(rc_store::RollbackError::NoLastGood));
    assert_eq!(rollback(&store), Err(rc_store::RollbackError::NoLastGood), "and again: stable");
    assert_eq!(rc_store::fingerprint(&store), fp, "failed rollbacks must not write");
    let m = Manifest::read_current(&store).unwrap().expect("manifest");
    assert_eq!(m.version, 1, "v1 still serves");
}

#[test]
fn dirty_telemetry_is_quarantined_with_exact_accounting() {
    let _gate = gate();
    let trace = Trace::generate(&TraceConfig {
        target_vms: 4_000,
        n_subscriptions: 150,
        days: 24,
        ..TraceConfig::small()
    });
    let plan = DirtyPlan::uniform(dirty_seed(), 0.25);
    let (dirty, dirty_report) = plan.apply(&trace);
    assert!(dirty_report.detectable() > 0, "the plan must actually corrupt something");

    let reg = rc_obs::global();
    let at = |name: &str| reg.counter(name).get();
    let extracted0 = at(rc_obs::PIPELINE_EXTRACTED_RECORDS);
    let cleaned0 = at(rc_obs::PIPELINE_CLEANED_RECORDS);
    let quarantined0 = at(rc_obs::PIPELINE_QUARANTINED_RECORDS);
    let duplicates0 = at(rc_obs::PIPELINE_QUARANTINED_DUPLICATES);
    let invalid0 = at(rc_obs::PIPELINE_QUARANTINED_INVALID_UTIL);
    let skew0 = at(rc_obs::PIPELINE_QUARANTINED_CLOCK_SKEW);
    let truncated0 = at(rc_obs::PIPELINE_QUARANTINED_TRUNCATED);
    let orphaned0 = at(rc_obs::PIPELINE_QUARANTINED_ORPHANED);

    let output = rc_core::run_pipeline(&dirty, &rc_core::PipelineConfig::fast(24))
        .expect("the pipeline survives dirty telemetry");
    let q = &output.quarantine;

    // The invariant: extracted == cleaned + quarantined, per category,
    // and the registry deltas reconcile with the report exactly.
    assert!(q.balanced(), "unbalanced: {q}");
    assert_eq!(q.extracted, q.cleaned + q.quarantined());
    assert_eq!(q.extracted, dirty.vms.len() as u64);
    assert_eq!(at(rc_obs::PIPELINE_EXTRACTED_RECORDS) - extracted0, q.extracted);
    assert_eq!(at(rc_obs::PIPELINE_CLEANED_RECORDS) - cleaned0, q.cleaned);
    assert_eq!(at(rc_obs::PIPELINE_QUARANTINED_RECORDS) - quarantined0, q.quarantined());
    assert_eq!(at(rc_obs::PIPELINE_QUARANTINED_DUPLICATES) - duplicates0, q.duplicates);
    assert_eq!(at(rc_obs::PIPELINE_QUARANTINED_INVALID_UTIL) - invalid0, q.invalid_util);
    assert_eq!(at(rc_obs::PIPELINE_QUARANTINED_CLOCK_SKEW) - skew0, q.clock_skew);
    assert_eq!(at(rc_obs::PIPELINE_QUARANTINED_TRUNCATED) - truncated0, q.truncated);
    assert_eq!(at(rc_obs::PIPELINE_QUARANTINED_ORPHANED) - orphaned0, q.orphaned);

    // And with the injected corruption: everything still present in the
    // dirty trace was caught, in its own category.
    assert_eq!(q.quarantined(), dirty_report.detectable());
    assert_eq!(q.duplicates, dirty_report.duplicated);
    assert_eq!(q.invalid_util, dirty_report.nan_util + dirty_report.out_of_range_util);
    assert_eq!(q.clock_skew, dirty_report.clock_skew);
    assert_eq!(q.truncated, dirty_report.truncated);
    assert_eq!(q.orphaned, dirty_report.orphaned);

    // The cleaned stream still trains all six models and publishes.
    assert_eq!(output.models.len(), 6);
    assert!(output.quarantined_metrics.is_empty());
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish from cleaned telemetry");

    // Same-seed runs are bit-identical: corruption schedule, quarantine
    // decisions, and the cleaned trace itself.
    let (dirty2, report2) = plan.apply(&trace);
    assert_eq!(report2, dirty_report);
    assert_eq!(trace_fingerprint(&dirty2), trace_fingerprint(&dirty));
    let (clean1, q1) = rc_core::cleanup(&dirty);
    let (clean2, q2) = rc_core::cleanup(&dirty2);
    assert_eq!(q1, q2);
    assert_eq!(q1, *q);
    assert_eq!(trace_fingerprint(clean1.as_ref()), trace_fingerprint(clean2.as_ref()));
}

#[test]
fn a_regressed_model_blocks_publication_and_leaves_the_store_untouched() {
    let _gate = gate();
    let (_, output) = world();
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("v1");
    let m1 = Manifest::read_current(&store).unwrap().expect("v1 manifest");

    // Doctor the published manifest so every model looks far better than
    // the candidate: any republication is now an ε-regression.
    let inflated: Vec<ModelEntry> = m1
        .models
        .iter()
        .map(|e| ModelEntry {
            key: e.key.clone(),
            checksum: e.checksum,
            accuracy: e.accuracy + 0.5,
        })
        .collect();
    let doctored = Manifest::new(
        m1.version,
        m1.last_good,
        m1.version_tag.clone(),
        inflated,
        m1.features.clone(),
    );
    store.put(MANIFEST_KEY, doctored.to_bytes()).unwrap();

    let reg = rc_obs::global();
    let blocked0 = reg.counter(rc_obs::PIPELINE_PUBLISH_BLOCKED).get();
    let keys_before = store.keys();
    let manifest_history_before = store.latest_version(MANIFEST_KEY);

    let err = output.publish(&store, 0.5).unwrap_err();
    assert!(matches!(err, PipelineError::PublishBlocked { .. }), "wrong error: {err}");
    assert_eq!(reg.counter(rc_obs::PIPELINE_PUBLISH_BLOCKED).get() - blocked0, 1);

    // Gates run before writes: the store is byte-identical — no new
    // keys, no new manifest version, the doctored manifest still serving.
    assert_eq!(store.keys(), keys_before);
    assert_eq!(store.latest_version(MANIFEST_KEY), manifest_history_before);
    let current = Manifest::read_current(&store).unwrap().expect("manifest");
    assert_eq!(current, doctored);

    // A widened ε admits the same candidate.
    let version = output
        .publish_gated(&store, PublishGate { min_accuracy: 0.5, max_regression: 1.0 })
        .expect("wide gate");
    assert_eq!(version, 2);
}

#[test]
fn a_poisoned_model_payload_is_rejected_and_the_old_model_keeps_serving() {
    let _gate = gate();
    let (trace, output) = world();
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("v1");

    let client = RcClient::new(store.clone(), ClientConfig::default());
    assert!(client.initialize());
    let inputs = (0..trace.n_vms() as u64)
        .map(|id| vm_inputs(trace, VmId(id)))
        .find(|inputs| client.predict_single("VM_P95UTIL", inputs).is_predicted())
        .expect("some subscription must be predictable");
    let before = client.predict_single("VM_P95UTIL", &inputs);

    // v2 lands, then bit-rot scribbles over its P95 payload *after* the
    // manifest sealed the checksum.
    output.publish(&store, 0.5).expect("v2");
    let m2 = Manifest::read_current(&store).unwrap().expect("v2 manifest");
    let logical = ModelSpec::for_metric(PredictionMetric::P95MaxCpuUtil).store_key();
    store.put(&m2.versioned_key(&logical), b"rotten bits".to_vec().into()).unwrap();

    let rejected0 = rc_obs::global().counter(rc_obs::CLIENT_MODEL_REJECTED).get();
    client.force_reload_cache();
    assert_eq!(client.manifest_version(), Some(2));
    assert_eq!(client.model_rejected_count(), 1, "the rotten payload must be rejected");
    assert_eq!(rc_obs::global().counter(rc_obs::CLIENT_MODEL_REJECTED).get() - rejected0, 1);

    // Containment: the rejected payload never swapped in — the resident
    // model keeps serving, and every slot is still populated.
    assert_eq!(client.get_available_models().len(), 6);
    assert_eq!(client.predict_single("VM_P95UTIL", &inputs), before);

    // A validly-checksummed payload sitting in the *wrong* slot is also
    // rejected: the decoded model's identity must match the slot.
    let avg_logical = ModelSpec::for_metric(PredictionMetric::AvgCpuUtil).store_key();
    let avg_bytes = store.get_latest(&m2.versioned_key(&avg_logical)).unwrap().data;
    store.put(&m2.versioned_key(&logical), avg_bytes.clone()).unwrap();
    let swapped_models: Vec<ModelEntry> = m2
        .models
        .iter()
        .map(|e| {
            if e.key == logical {
                ModelEntry {
                    key: e.key.clone(),
                    checksum: checksum(&avg_bytes),
                    accuracy: e.accuracy,
                }
            } else {
                e.clone()
            }
        })
        .collect();
    let swapped = Manifest::new(
        m2.version,
        m2.last_good,
        m2.version_tag.clone(),
        swapped_models,
        m2.features.clone(),
    );
    store.put(MANIFEST_KEY, swapped.to_bytes()).unwrap();

    client.force_reload_cache();
    assert_eq!(client.model_rejected_count(), 2, "the wrong-slot payload must be rejected");
    assert_eq!(client.get_available_models().len(), 6);
    assert_eq!(client.predict_single("VM_P95UTIL", &inputs), before);
}

#[test]
fn five_of_six_metrics_publish_and_the_scheduler_runs_end_to_end() {
    let _gate = gate();
    let (trace, _) = world();
    let (output, quarantined_delta) = degraded();

    // Exactly the failed metric was quarantined, with its panic message
    // captured; the survivors validated normally.
    assert_eq!(*quarantined_delta, 1);
    assert_eq!(output.models.len(), 5);
    assert_eq!(output.reports.len(), 5);
    let (metric, message) = &output.quarantined_metrics[0];
    assert_eq!(*metric, PredictionMetric::WorkloadClass);
    assert!(message.contains("injected training fault"), "message: {message}");
    assert!(output.reports.iter().all(|r| r.metric != PredictionMetric::WorkloadClass));

    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("five models publish");
    let m = Manifest::read_current(&store).unwrap().expect("manifest");
    assert_eq!(m.models.len(), 5);
    assert_version_intact(&store, &m);

    let client = RcClient::new(store.clone(), ClientConfig::default());
    assert!(client.initialize());
    let models = client.get_available_models();
    assert_eq!(models.len(), 5, "{models:?}");
    let missing = PredictionMetric::WorkloadClass.model_name();
    assert!(!models.contains(&missing.to_string()));
    // The quarantined metric degrades to no-prediction, not an error.
    let inputs = vm_inputs(trace, VmId(0));
    assert_eq!(client.predict_single(missing, &inputs), PredictionResponse::NoPrediction);

    // End-to-end: the RC-informed scheduler runs the test month on the
    // surviving models.
    let from = Timestamp::from_days(16);
    let until = Timestamp::from_days(24);
    let requests = VmRequest::stream(trace, from, until, 16);
    assert!(requests.len() > 300, "need a real arrival stream, got {}", requests.len());
    let config = SimConfig {
        n_servers: suggest_server_count(&requests, 16.0, 1.0),
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 3,
        obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
        accuracy: None,
    };
    let report =
        simulate(&requests, &config, Box::new(RcSource::new(client.clone())), (from, until));
    assert_eq!(report.n_arrivals, requests.len() as u64);
    assert!(report.failure_rate() < 0.05, "failure rate {}", report.failure_rate());
    assert!(client.lookup_count() > 0, "the scheduler never consulted RC");
}
