//! Table 2 API coverage: every client method, both caching modes, and the
//! degraded paths (store unavailable, disk cache, no-prediction).

use std::time::Duration as StdDuration;

use rc_core::labels::vm_inputs;
use rc_types::vm::SubscriptionId;
use resource_central::prelude::*;

fn world() -> (Trace, Store) {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 5_000,
        n_subscriptions: 200,
        days: 24,
        ..TraceConfig::small()
    });
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24)).unwrap();
    let store = Store::in_memory();
    output.publish(&store, 0.5).unwrap();
    (trace, store)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rc_client_api_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Models RC's next offline run publishing feature data for one more
/// subscription: writes the payload under the current version prefix and
/// flips an updated manifest listing it.
fn append_feature_record(store: &Store, features: &rc_core::SubscriptionFeatures) {
    use rc_store::{checksum, FeatureEntry, Manifest, MANIFEST_KEY};
    let m = Manifest::read_current(store).expect("store up").expect("published manifest");
    let logical = rc_core::feature_store_key(features.subscription);
    let bytes = serde_json::to_vec(features).unwrap();
    store.put(&m.versioned_key(&logical), bytes.clone().into()).unwrap();
    let mut feature_entries = m.features.clone();
    feature_entries.push(FeatureEntry { key: logical, checksum: checksum(&bytes) });
    let updated = Manifest::new(
        m.version,
        m.last_good,
        m.version_tag.clone(),
        m.models.clone(),
        feature_entries,
    );
    store.put(MANIFEST_KEY, updated.to_bytes()).unwrap();
}

#[test]
fn initialize_is_required_before_predictions() {
    let (trace, store) = world();
    let client = RcClient::new(store, ClientConfig::default());
    let inputs = vm_inputs(&trace, VmId(0));
    assert_eq!(client.predict_single("VM_AVGUTIL", &inputs), PredictionResponse::NoPrediction);
    assert!(client.initialize());
    // After initialize, most requests are served.
    assert!(client.get_available_models().contains(&"VM_AVGUTIL".to_string()));
}

#[test]
fn initialize_fails_without_store_or_disk() {
    let (_, store) = world();
    store.set_available(false);
    let client = RcClient::new(store, ClientConfig::default());
    assert!(!client.initialize(), "nothing to load from");
}

#[test]
fn get_available_models_lists_all_six() {
    let (_, store) = world();
    let client = RcClient::new(store, ClientConfig::default());
    client.initialize();
    let models = client.get_available_models();
    for metric in PredictionMetric::ALL {
        assert!(models.contains(&metric.model_name().to_string()), "missing {metric}");
    }
}

#[test]
fn unknown_model_and_unknown_subscription_yield_no_prediction() {
    let (trace, store) = world();
    let client = RcClient::new(store, ClientConfig::default());
    client.initialize();
    let mut inputs = vm_inputs(&trace, VmId(0));
    assert_eq!(client.predict_single("NOT_A_MODEL", &inputs), PredictionResponse::NoPrediction);
    // A subscription RC has never seen (e.g. created after the last
    // feature push) answers no-prediction rather than guessing.
    inputs.subscription = SubscriptionId(9_999_999);
    assert_eq!(client.predict_single("VM_AVGUTIL", &inputs), PredictionResponse::NoPrediction);
    assert!(client.no_prediction_count() >= 2);
}

#[test]
fn predict_many_matches_predict_single() {
    let (trace, store) = world();
    let client = RcClient::new(store, ClientConfig::default());
    client.initialize();
    let batch: Vec<_> = (0..20u64).map(|i| vm_inputs(&trace, VmId(i * 11))).collect();
    let many = client.predict_many("VM_LIFETIME", &batch);
    assert_eq!(many.len(), batch.len());
    for (inputs, expected) in batch.iter().zip(&many) {
        assert_eq!(client.predict_single("VM_LIFETIME", inputs), *expected);
    }
}

#[test]
fn predict_many_deduplicates_repeated_inputs() {
    let (trace, store) = world();
    let client = RcClient::new(store, ClientConfig::default());
    client.initialize();
    let a = vm_inputs(&trace, VmId(3));
    let b = vm_inputs(&trace, VmId(5));
    let batch = vec![a, b, a, b, a];
    let out = client.predict_many("VM_AVGUTIL", &batch);
    assert_eq!(out.len(), 5);
    assert!(out[0].is_predicted() && out[1].is_predicted());
    assert_eq!(out[0], out[2]);
    assert_eq!(out[0], out[4]);
    assert_eq!(out[1], out[3]);
    // Five misses, but only the two unique keys execute their model.
    assert_eq!(client.model_exec_count(), 2);
    let stats = client.result_cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 5));
    // An identical batch is then pure cache hits: no new executions.
    let again = client.predict_many("VM_AVGUTIL", &batch);
    assert_eq!(again, out);
    assert_eq!(client.model_exec_count(), 2);
    let stats = client.result_cache_stats();
    assert_eq!((stats.hits, stats.misses), (5, 5));
}

#[test]
fn flush_cache_drops_everything() {
    let (trace, store) = world();
    let client = RcClient::new(store, ClientConfig::default());
    client.initialize();
    let inputs = vm_inputs(&trace, VmId(3));
    client.predict_single("VM_AVGUTIL", &inputs);
    client.flush_cache();
    assert!(client.get_available_models().is_empty());
    assert_eq!(client.predict_single("VM_AVGUTIL", &inputs), PredictionResponse::NoPrediction);
    // A re-initialize recovers.
    assert!(client.initialize());
    assert!(client.predict_single("VM_AVGUTIL", &inputs).is_predicted());
}

#[test]
fn force_reload_picks_up_new_feature_data() {
    let (trace, store) = world();
    let client = RcClient::new(store.clone(), ClientConfig::default());
    client.initialize();
    let mut inputs = vm_inputs(&trace, VmId(3));
    let fresh_sub = SubscriptionId(424_242);
    inputs.subscription = fresh_sub;
    assert_eq!(client.predict_single("VM_AVGUTIL", &inputs), PredictionResponse::NoPrediction);
    // RC's next offline run publishes feature data for the new
    // subscription; a push refresh makes it predictable.
    let features = rc_core::SubscriptionFeatures::new(fresh_sub);
    append_feature_record(&store, &features);
    client.force_reload_cache();
    assert!(client.predict_single("VM_AVGUTIL", &inputs).is_predicted());
}

#[test]
fn disk_cache_survives_store_outage_and_restart() {
    let (trace, store) = world();
    let dir = temp_dir("disk");
    let config = ClientConfig { disk_cache_dir: Some(dir.clone()), ..ClientConfig::default() };
    // First client mirrors everything to disk.
    let first = RcClient::new(store.clone(), config.clone());
    assert!(first.initialize());
    drop(first);

    // "Client crashes and restarts and the store is unavailable" (§4.2):
    // the restart loads from the local disk cache.
    store.set_available(false);
    let second = RcClient::new(store.clone(), config.clone());
    assert!(second.initialize(), "disk cache should cover the outage");
    let inputs = vm_inputs(&trace, VmId(5));
    assert!(second.predict_single("VM_P95UTIL", &inputs).is_predicted());

    // An *expired* disk cache is ignored.
    let expired = ClientConfig {
        disk_cache_dir: Some(dir.clone()),
        disk_cache_expiry: StdDuration::ZERO,
        ..ClientConfig::default()
    };
    std::thread::sleep(StdDuration::from_millis(15));
    let third = RcClient::new(store, expired);
    assert!(!third.initialize(), "expired disk cache must not serve");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn push_watcher_picks_up_new_publications() {
    let (trace, store) = world();
    let config = ClientConfig {
        auto_refresh_interval: Some(StdDuration::from_millis(40)),
        ..ClientConfig::default()
    };
    let client = RcClient::new(store.clone(), config);
    assert!(client.initialize());

    // A subscription RC has never seen answers no-prediction.
    let mut inputs = vm_inputs(&trace, VmId(3));
    inputs.subscription = SubscriptionId(777_777);
    assert_eq!(client.predict_single("VM_AVGUTIL", &inputs), PredictionResponse::NoPrediction);

    // RC's next offline run publishes its feature data; the watcher
    // notices the version change and refreshes the caches by itself.
    let features = rc_core::SubscriptionFeatures::new(SubscriptionId(777_777));
    append_feature_record(&store, &features);
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    loop {
        if client.predict_single("VM_AVGUTIL", &inputs).is_predicted() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never refreshed (refreshes = {})",
            client.background_refresh_count()
        );
        std::thread::sleep(StdDuration::from_millis(20));
    }
    assert!(client.background_refresh_count() >= 1);
}

#[test]
fn pull_mode_fills_cache_in_background() {
    let (trace, store) = world();
    let config = ClientConfig { mode: CacheMode::Pull, ..ClientConfig::default() };
    let client = RcClient::new(store, config);
    assert!(client.initialize());
    let inputs = vm_inputs(&trace, VmId(9));
    // First request misses: no-prediction now, background fill.
    assert_eq!(client.predict_single("VM_AVGUTIL", &inputs), PredictionResponse::NoPrediction);
    client.drain_pull_queue();
    // The identical request now hits the result cache.
    assert!(
        client.predict_single("VM_AVGUTIL", &inputs).is_predicted(),
        "background fill should have landed"
    );
}

#[test]
fn client_is_thread_safe() {
    let (trace, store) = world();
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let c = client.clone();
        let inputs: Vec<_> = (0..50u64)
            .map(|i| vm_inputs(&trace, VmId((t * 50 + i) % trace.n_vms() as u64)))
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut served = 0;
            for inp in &inputs {
                for metric in PredictionMetric::ALL {
                    if c.predict_single(metric.model_name(), inp).is_predicted() {
                        served += 1;
                    }
                }
            }
            served
        }));
    }
    let served: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0);
}
