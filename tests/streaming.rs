//! Streaming-vs-materialized equivalence, end to end: the streaming
//! trace generator, the streaming request source, and the streaming
//! simulator must reproduce the materialized pipeline bit for bit.

use rc_scheduler::{OracleSource, P95Source};
use rc_trace::trace_fingerprint;
use resource_central::prelude::*;

fn config() -> TraceConfig {
    TraceConfig { target_vms: 6_000, n_subscriptions: 250, days: 21, ..TraceConfig::small() }
}

fn sim_config(n_servers: usize) -> SimConfig {
    SimConfig {
        n_servers,
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 6,
        obs_tick_secs: 0,
        accuracy: None,
    }
}

#[test]
fn streamed_trace_collects_to_the_generated_trace() {
    let config = config();
    let materialized = Trace::generate(&config);
    let streamed = VmStream::new(&config).collect_trace();
    assert_eq!(trace_fingerprint(&materialized), trace_fingerprint(&streamed));
}

#[test]
fn streaming_simulation_is_byte_identical_to_materialized() {
    let config = config();
    let window = (Timestamp::ZERO, Timestamp::from_days(config.days as u64));

    let trace = Trace::generate(&config);
    let requests = VmRequest::stream(&trace, window.0, window.1, 16);
    let n_servers = suggest_server_count(&requests, 16.0, 0.95);
    let sim = sim_config(n_servers);
    let materialized = simulate(&requests, &sim, Box::new(OracleSource), window);

    let stream = || StreamRequestSource::new(VmStream::new(&config), window.0, window.1, 16, None);
    assert_eq!(suggest_server_count_stream(stream(), 16.0, 0.95), n_servers);
    let streamed = simulate_stream(stream(), &sim, Box::new(OracleSource), window);

    let a = serde_json::to_vec(&materialized).expect("serializes");
    let b = serde_json::to_vec(&streamed).expect("serializes");
    assert_eq!(a, b, "streaming SimReport must match the materialized one byte for byte");
}

#[test]
fn partitioned_simulation_merges_every_arrival_exactly_once() {
    let config = config();
    let window = (Timestamp::ZERO, Timestamp::from_days(config.days as u64));
    let trace = Trace::generate(&config);
    let requests = VmRequest::stream(&trace, window.0, window.1, 16);
    let n = suggest_server_count(&requests, 16.0, 0.95);
    let sim = sim_config(n.div_ceil(3));
    let make = || Box::new(OracleSource) as Box<dyn P95Source>;

    let one_worker = simulate_partitioned(&requests, &sim, &make, window, 3, 1);
    let many_workers = simulate_partitioned(&requests, &sim, &make, window, 3, 8);

    assert_eq!(one_worker.n_arrivals, requests.len() as u64);
    assert_eq!(one_worker.n_servers, 3 * sim.n_servers as u64);
    let a = serde_json::to_vec(&one_worker).expect("serializes");
    let b = serde_json::to_vec(&many_workers).expect("serializes");
    assert_eq!(a, b, "merged report must be identical for any worker count");
}

#[test]
fn dirty_stream_feeds_the_scheduler_like_the_materialized_dirty_trace() {
    let config = config();
    let plan = DirtyPlan::uniform(7, 0.08);

    let (materialized, report_a) = {
        let clean = Trace::generate(&config);
        plan.apply(&clean)
    };
    let (streamed, report_b) = DirtyVmStream::new(&config, plan).collect_trace();

    assert_eq!(trace_fingerprint(&materialized), trace_fingerprint(&streamed));
    assert_eq!(report_a, report_b);
}
