//! End-to-end integration: generate a workload, run the offline pipeline,
//! publish, serve predictions through the client, and feed the scheduler.

use rc_core::labels::vm_inputs;
use rc_scheduler::RcSource;
use rc_types::time::Timestamp;
use resource_central::prelude::*;

fn small_world() -> (Trace, PipelineOutput, Store) {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 8_000,
        n_subscriptions: 300,
        days: 30,
        ..TraceConfig::small()
    });
    let output = run_pipeline(&trace, &PipelineConfig::fast(30)).expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    (trace, output, store)
}

#[test]
fn pipeline_beats_chance_on_every_metric() {
    let (_, output, _) = small_world();
    for report in &output.reports {
        // 4-bucket metrics have a 25% chance floor, the 2-class one 50%
        // (and its base rate is ~99%, so demand much more).
        let floor = if report.metric == PredictionMetric::WorkloadClass { 0.7 } else { 0.45 };
        assert!(
            report.accuracy > floor,
            "{}: accuracy {:.3} vs floor {floor}",
            report.metric,
            report.accuracy
        );
    }
}

#[test]
fn client_serves_pipeline_models() {
    let (trace, _, store) = small_world();
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());
    assert_eq!(client.get_available_models().len(), 6);

    let mut predicted = 0usize;
    let mut total = 0usize;
    for id in (0..trace.n_vms() as u64).step_by(97).map(VmId) {
        let inputs = vm_inputs(&trace, id);
        for metric in PredictionMetric::ALL {
            total += 1;
            if client.predict_single(metric.model_name(), &inputs).is_predicted() {
                predicted += 1;
            }
        }
    }
    // A few subscriptions are new (no feature data) and answer
    // no-prediction, but most requests must be served.
    assert!(predicted as f64 / total as f64 > 0.8, "served {predicted}/{total}");
}

#[test]
fn client_predictions_match_direct_model_execution() {
    use rc_ml::Classifier;
    let (trace, output, store) = small_world();
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    let inputs = vm_inputs(&trace, VmId(100));
    let response = client.predict_single("VM_AVGUTIL", &inputs);
    if let Some(p) = response.prediction() {
        let model = output.model(PredictionMetric::AvgCpuUtil);
        let features = model.spec.features(&inputs, &output.feature_data[&inputs.subscription]);
        let (value, score) = model.predict(&features);
        assert_eq!(p.value, value);
        assert!((p.score - score).abs() < 1e-9);
    }
}

#[test]
fn result_cache_reuses_executions() {
    let (trace, _, store) = small_world();
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());
    let inputs = vm_inputs(&trace, VmId(7));
    for _ in 0..50 {
        client.predict_single("VM_P95UTIL", &inputs);
    }
    assert!(client.model_exec_count() <= 1);
    assert!(client.result_cache_hit_rate() > 0.9);
}

#[test]
fn rc_informed_scheduler_runs_on_live_predictions() {
    let (trace, _, store) = small_world();
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    // Schedule the test month's arrivals with live RC predictions.
    let from = Timestamp::from_days(20);
    let until = Timestamp::from_days(30);
    let requests = VmRequest::stream(&trace, from, until, 16);
    assert!(requests.len() > 500);
    let n_servers = suggest_server_count(&requests, 16.0, 1.0);
    let config = SimConfig {
        n_servers,
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 3,
        obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
        accuracy: None,
    };
    let report =
        simulate(&requests, &config, Box::new(RcSource::new(client.clone())), (from, until));
    assert_eq!(report.n_arrivals, requests.len() as u64);
    assert!(report.failure_rate() < 0.05, "failure rate {}", report.failure_rate());
    // The scheduler consulted RC for every non-production arrival.
    assert!(client.model_exec_count() + client.no_prediction_count() > 0);
}

#[test]
fn publish_then_republish_bumps_versions() {
    let (_, output, store) = small_world();
    let m1 = rc_store::Manifest::read_current(&store).expect("store up").expect("manifest");
    let v2 = output.publish(&store, 0.5).expect("second publish");
    assert_eq!(v2, m1.version + 1, "republication must bump the manifest version");
    let m2 = rc_store::Manifest::read_current(&store).expect("store up").expect("manifest");
    assert_eq!(m2.last_good, m1.version, "the old version becomes the rollback target");
    // Both versions' payloads are retained: the flip is a pointer move,
    // not an overwrite.
    let key = rc_core::ModelSpec::for_metric(PredictionMetric::AvgCpuUtil).store_key();
    assert!(store.get_latest(&m1.versioned_key(&key)).is_ok());
    assert!(store.get_latest(&m2.versioned_key(&key)).is_ok());
}
