//! Chaos suite: the client's degradation ladder under a deterministic
//! fault-injecting store.
//!
//! Every test drives `predict_single_traced` through a `FaultyStore`
//! running a seeded `FaultPlan` and asserts *exact* outcomes: the
//! `lookups == hits + fresh + stale + defaults` reconciliation from
//! registry deltas, bit-identical schedules across identically-seeded
//! runs, and the precise circuit-breaker transition count for a scripted
//! outage. `RC_CHAOS_SEED` picks the fault seed (CI runs two).
//!
//! The rc-obs registry is process-global, so the tests serialize on one
//! mutex and measure counter deltas inside the critical section.

use std::sync::{Mutex, OnceLock};
use std::time::Duration as StdDuration;

use rc_core::labels::vm_inputs;
use rc_core::ClientInputs;
use resource_central::prelude::*;

/// Serializes the tests in this binary: they assert global-registry
/// deltas and flip the shared store's availability switch.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn world() -> &'static (Trace, Store) {
    static WORLD: OnceLock<(Trace, Store)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 5_000,
            n_subscriptions: 200,
            days: 24,
            ..TraceConfig::small()
        });
        let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24)).unwrap();
        let store = Store::in_memory();
        output.publish(&store, 0.5).unwrap();
        (trace, store)
    })
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rc_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fault seed; CI runs the suite twice with `RC_CHAOS_SEED=1` / `=2`.
fn chaos_seed() -> u64 {
    std::env::var("RC_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4A0_5017)
}

/// The ISSUE's headline plan: 30% per-op unavailability, 5% payload
/// corruption, plus short transient bursts. No latency spikes — the
/// schedule must not depend on wall time.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        p_unavailable: 0.3,
        p_transient: 0.02,
        transient_burst: 2,
        p_latency_spike: 0.0,
        latency_spike: StdDuration::ZERO,
        p_corrupt: 0.05,
    }
}

/// A deterministic request mix: VMs strided across the trace, metrics
/// round-robined.
fn requests(trace: &Trace, n: usize) -> Vec<(&'static str, ClientInputs)> {
    let n_vms = trace.n_vms() as u64;
    (0..n)
        .map(|i| {
            let vm = VmId((i as u64 * 7919) % n_vms);
            let metric = PredictionMetric::ALL[i % PredictionMetric::ALL.len()];
            (metric.model_name(), vm_inputs(trace, vm))
        })
        .collect()
}

/// Primes `dir` with every model and feature record the request mix
/// needs, through a healthy store (write-through on).
fn prime_disk(store: &Store, dir: &std::path::Path, reqs: &[(&'static str, ClientInputs)]) {
    let client = RcClient::new(
        store.clone(),
        ClientConfig {
            mode: CacheMode::PullSync,
            disk_cache_dir: Some(dir.to_path_buf()),
            ..ClientConfig::default()
        },
    );
    assert!(client.initialize(), "priming client must initialize from a healthy store");
    for (model, inputs) in reqs {
        let _ = client.predict_single(model, inputs);
    }
}

/// The chaos-run client config: synchronous pulls, zero disk expiry (so
/// every disk entry is served through the stale-grace window), no
/// write-through (the primed disk is read-only across runs), and backoff
/// that never sleeps or consults the deadline.
fn chaos_config(dir: std::path::PathBuf) -> ClientConfig {
    ClientConfig {
        mode: CacheMode::PullSync,
        disk_cache_dir: Some(dir),
        disk_cache_expiry: StdDuration::ZERO,
        stale_grace: StdDuration::from_secs(3600),
        disk_write_through: false,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: StdDuration::ZERO,
            max_backoff: StdDuration::ZERO,
            call_deadline: StdDuration::from_secs(30),
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    }
}

/// Per-class tallies from traced predict calls.
#[derive(Debug, Default, PartialEq, Eq)]
struct Tally {
    hits: u64,
    fresh: u64,
    stale: u64,
    defaults: u64,
}

impl Tally {
    fn count(&mut self, served: Served) {
        match served {
            Served::Hit => self.hits += 1,
            Served::Fresh => self.fresh += 1,
            Served::Stale => self.stale += 1,
            Served::Default => self.defaults += 1,
        }
    }

    fn total(&self) -> u64 {
        self.hits + self.fresh + self.stale + self.defaults
    }
}

#[test]
fn chaos_run_reconciles_every_lookup_exactly() {
    let _gate = gate();
    let (trace, store) = world();
    let dir = temp_dir("recon");
    let reqs = requests(trace, 600);
    prime_disk(store, &dir, &reqs);

    let faulty = FaultyStore::new(store.clone(), chaos_plan(chaos_seed()));
    let client =
        RcClient::with_backend(std::sync::Arc::new(faulty.clone()), chaos_config(dir.clone()));

    let reg = rc_obs::global();
    let at = |name: &str| reg.counter(name).get();
    let lookups0 = at(rc_obs::CLIENT_LOOKUPS);
    let hits0 = at(rc_obs::CLIENT_RESULT_CACHE_HITS);
    let fresh0 = at(rc_obs::CLIENT_FRESH_FETCHES);
    let stale0 = at(rc_obs::CLIENT_STALE_SERVES);
    let defaults0 = at(rc_obs::CLIENT_DEFAULTS);
    let retries0 = at(rc_obs::CLIENT_RETRIES);
    let corrupt0 = at(rc_obs::CLIENT_CORRUPT_PAYLOADS);
    let injected0 = at(rc_obs::STORE_INJECTED_FAULTS);

    assert!(client.initialize(), "store-or-disk must bring the client up");
    let mut tally = Tally::default();
    let mut predicted = 0u64;
    for (model, inputs) in &reqs {
        // Every call must come back with a response — the ladder never
        // throws, blocks, or panics, whatever the injector does.
        let (response, served) = client.predict_single_traced(model, inputs);
        tally.count(served);
        if response.is_predicted() {
            predicted += 1;
        }
    }

    let lookups = at(rc_obs::CLIENT_LOOKUPS) - lookups0;
    let hits = at(rc_obs::CLIENT_RESULT_CACHE_HITS) - hits0;
    let fresh = at(rc_obs::CLIENT_FRESH_FETCHES) - fresh0;
    let stale = at(rc_obs::CLIENT_STALE_SERVES) - stale0;
    let defaults = at(rc_obs::CLIENT_DEFAULTS) - defaults0;

    // 100% answered, and the ladder rungs partition the lookups exactly.
    assert_eq!(tally.total(), reqs.len() as u64);
    assert_eq!(lookups, reqs.len() as u64);
    assert_eq!(
        hits + fresh + stale + defaults,
        lookups,
        "reconciliation broke: {hits} + {fresh} + {stale} + {defaults} != {lookups}"
    );
    assert_eq!(
        (hits, fresh, stale, defaults),
        (tally.hits, tally.fresh, tally.stale, tally.defaults),
        "registry deltas must match the per-call Served classes"
    );

    // The client-side accessors agree with the registry.
    assert_eq!(client.lookup_count(), lookups);
    assert_eq!(client.fresh_fetch_count(), fresh);
    assert_eq!(client.stale_serve_count(), stale);
    assert_eq!(client.retry_count(), at(rc_obs::CLIENT_RETRIES) - retries0);
    assert_eq!(client.corrupt_payload_count(), at(rc_obs::CLIENT_CORRUPT_PAYLOADS) - corrupt0);

    // The run was actually chaotic: faults of both headline kinds landed,
    // and the injector's own counts reached the registry.
    let injected = faulty.injector().injected();
    assert!(injected.unavailable > 0, "no unavailability injected: {injected:?}");
    assert!(injected.corruptions > 0, "no corruption injected: {injected:?}");
    assert_eq!(at(rc_obs::STORE_INJECTED_FAULTS) - injected0, injected.total());

    // Despite 30% unavailability and corrupt payloads, the ladder kept
    // serving real predictions (store retries + stale disk entries).
    assert!(
        predicted as f64 / reqs.len() as f64 > 0.7,
        "only {predicted}/{} predicted under chaos",
        reqs.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identically_seeded_chaos_runs_are_bit_identical() {
    let _gate = gate();
    let (trace, store) = world();
    let dir = temp_dir("repro");
    let reqs = requests(trace, 400);
    prime_disk(store, &dir, &reqs);

    let run = |seed: u64| {
        let faulty = FaultyStore::new(store.clone(), chaos_plan(seed));
        let client =
            RcClient::with_backend(std::sync::Arc::new(faulty.clone()), chaos_config(dir.clone()));
        let reg = rc_obs::global();
        let transitions0 = reg.counter(rc_obs::CLIENT_BREAKER_TRANSITIONS).get();
        client.initialize();
        let outcomes: Vec<(PredictionResponse, Served)> = reqs
            .iter()
            .map(|(model, inputs)| client.predict_single_traced(model, inputs))
            .collect();
        (
            outcomes,
            client.retry_count(),
            client.corrupt_payload_count(),
            client.store_fallback_count(),
            reg.counter(rc_obs::CLIENT_BREAKER_TRANSITIONS).get() - transitions0,
            faulty.injector().injected(),
        )
    };

    let seed = chaos_seed();
    let first = run(seed);
    let second = run(seed);
    assert_eq!(
        first, second,
        "two runs with the same fault seed against the same primed disk must match bit-for-bit"
    );
    // And a different seed must actually change the schedule.
    let third = run(seed ^ 0xFFFF);
    assert_ne!(first.5, third.5, "a different seed left the injected-fault counts unchanged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restores the shared store's availability switch even if the test
/// panics, so a failure here cannot cascade into the other tests.
struct AvailabilityGuard<'a>(&'a Store);

impl Drop for AvailabilityGuard<'_> {
    fn drop(&mut self) {
        self.0.set_available(true);
    }
}

#[test]
fn breaker_walks_a_deterministic_transition_schedule() {
    let _gate = gate();
    let (trace, store) = world();
    let _restore = AvailabilityGuard(store);

    // Inputs for a subscription that actually has published feature data,
    // found through a healthy push-mode probe.
    let probe = RcClient::new(store.clone(), ClientConfig::default());
    assert!(probe.initialize());
    let inputs = (0..trace.n_vms() as u64)
        .map(|id| vm_inputs(trace, VmId(id)))
        .find(|inputs| probe.predict_single("VM_P95UTIL", inputs).is_predicted())
        .expect("some subscription must be predictable");
    drop(probe);

    // Cooldowns are counted in calls, so the whole outage script is exact:
    //   calls 1-3   admitted, fail        -> Closed -> Open      (t1)
    //   calls 4-6   rejected
    //   call  7     probe, fails          -> Open -> HalfOpen    (t2)
    //                                     -> HalfOpen -> Open    (t3)
    //   (store recovers)
    //   calls 8-10  rejected
    //   call 11     probe, succeeds       -> Open -> HalfOpen    (t4)
    //                                     -> HalfOpen -> Closed  (t5)
    //   call 12     result-cache hit
    let client = RcClient::with_backend(
        std::sync::Arc::new(store.clone()),
        ClientConfig {
            mode: CacheMode::PullSync,
            breaker: BreakerConfig { failure_threshold: 3, probe_after: 4, success_threshold: 1 },
            retry: RetryPolicy {
                max_attempts: 1,
                base_backoff: StdDuration::ZERO,
                max_backoff: StdDuration::ZERO,
                call_deadline: StdDuration::from_secs(30),
                ..RetryPolicy::default()
            },
            ..ClientConfig::default()
        },
    );
    assert!(client.initialize(), "models load while the store is still up");
    assert_eq!(client.health(), ClientHealth::Healthy);

    let reg = rc_obs::global();
    let transitions0 = reg.counter(rc_obs::CLIENT_BREAKER_TRANSITIONS).get();
    let transitions = || reg.counter(rc_obs::CLIENT_BREAKER_TRANSITIONS).get() - transitions0;
    let open_gauge = || reg.gauge(rc_obs::CLIENT_BREAKER_OPEN).get();

    store.set_available(false);
    for call in 1..=3 {
        let (response, served) = client.predict_single_traced("VM_P95UTIL", &inputs);
        assert_eq!(response, PredictionResponse::NoPrediction, "call {call}");
        assert_eq!(served, Served::Default, "call {call}");
    }
    assert_eq!(transitions(), 1, "three consecutive failures trip the breaker open");
    assert_eq!(client.open_breaker_count(), 1);
    assert_eq!(open_gauge(), 1.0);
    assert!(
        matches!(
            client.health(),
            ClientHealth::Degraded { reason: DegradedReason::BreakerOpen, .. }
        ),
        "health must surface the open breaker: {:?}",
        client.health()
    );

    for call in 4..=7 {
        let (response, _) = client.predict_single_traced("VM_P95UTIL", &inputs);
        assert_eq!(response, PredictionResponse::NoPrediction, "call {call}");
    }
    assert_eq!(transitions(), 3, "call 7's probe fails and reopens the breaker");
    assert_eq!(client.open_breaker_count(), 1);

    store.set_available(true);
    for call in 8..=10 {
        // Still rejected: the open breaker fails fast without noticing
        // the store recovered until the next probe window.
        let (response, _) = client.predict_single_traced("VM_P95UTIL", &inputs);
        assert_eq!(response, PredictionResponse::NoPrediction, "call {call}");
    }
    assert_eq!(transitions(), 3, "rejected calls are not transitions");

    let (response, served) = client.predict_single_traced("VM_P95UTIL", &inputs);
    assert!(response.is_predicted(), "call 11's probe reaches the recovered store");
    assert_eq!(served, Served::Fresh);
    assert_eq!(transitions(), 5, "probe success closes the breaker");
    assert_eq!(client.open_breaker_count(), 0);
    assert_eq!(open_gauge(), 0.0);
    assert_eq!(client.health(), ClientHealth::Healthy);

    let (response, served) = client.predict_single_traced("VM_P95UTIL", &inputs);
    assert!(response.is_predicted());
    assert_eq!(served, Served::Hit, "call 12 is served by the result cache");
    assert_eq!(transitions(), 5, "nothing moved after recovery");
}

#[test]
fn latency_spike_overrunning_the_deadline_feeds_the_breaker() {
    let _gate = gate();
    let (trace, store) = world();

    // A predictable subscription, found through a healthy probe.
    let probe = RcClient::new(store.clone(), ClientConfig::default());
    assert!(probe.initialize());
    let inputs = (0..trace.n_vms() as u64)
        .map(|id| vm_inputs(trace, VmId(id)))
        .find(|inputs| probe.predict_single("VM_P95UTIL", inputs).is_predicted())
        .expect("some subscription must be predictable");
    drop(probe);

    // Every store operation sleeps 25 ms before answering successfully.
    let spiky_plan = FaultPlan {
        seed: chaos_seed(),
        p_unavailable: 0.0,
        p_transient: 0.0,
        transient_burst: 0,
        p_latency_spike: 1.0,
        latency_spike: StdDuration::from_millis(25),
        p_corrupt: 0.0,
    };
    let sync_config = |deadline: StdDuration| ClientConfig {
        mode: CacheMode::PullSync,
        breaker: BreakerConfig { failure_threshold: 3, probe_after: 4, success_threshold: 1 },
        retry: RetryPolicy {
            max_attempts: 1,
            base_backoff: StdDuration::ZERO,
            max_backoff: StdDuration::ZERO,
            call_deadline: deadline,
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    };

    // Control: with a generous deadline, a spiked reply is late but still
    // *data* — the pull succeeds and serves fresh.
    let faulty = FaultyStore::new(store.clone(), spiky_plan);
    let control = RcClient::with_backend(
        std::sync::Arc::new(faulty.clone()),
        sync_config(StdDuration::from_secs(30)),
    );
    assert!(control.initialize());
    let (response, served) = control.predict_single_traced("VM_P95UTIL", &inputs);
    assert!(response.is_predicted(), "a slow store within the deadline must still serve");
    assert_eq!(served, Served::Fresh);
    assert!(faulty.injector().injected().latency_spikes > 0);

    // Victim: the same spiking store behind a 5 ms per-call deadline. The
    // reply always arrives — 20 ms too late. Each overrun is a failure
    // that feeds the breaker exactly like a timeout:
    //   calls 1-3  admitted, spike overruns  -> Closed -> Open      (t1)
    //   calls 4-6  rejected (no store op, no spike)
    //   call  7    probe, spike overruns     -> Open -> HalfOpen    (t2)
    //                                        -> HalfOpen -> Open    (t3)
    let client = RcClient::with_backend(
        std::sync::Arc::new(faulty.clone()),
        sync_config(StdDuration::from_millis(5)),
    );
    assert!(client.initialize(), "initialize is not deadline-bound");

    let reg = rc_obs::global();
    let at = |name: &str| reg.counter(name).get();
    let lookups0 = at(rc_obs::CLIENT_LOOKUPS);
    let defaults0 = at(rc_obs::CLIENT_DEFAULTS);
    let fresh0 = at(rc_obs::CLIENT_FRESH_FETCHES);
    let stale0 = at(rc_obs::CLIENT_STALE_SERVES);
    let hits0 = at(rc_obs::CLIENT_RESULT_CACHE_HITS);
    let transitions0 = at(rc_obs::CLIENT_BREAKER_TRANSITIONS);
    let spikes_reg0 = at(rc_obs::STORE_INJECTED_LATENCY_SPIKES);
    let spikes0 = faulty.injector().injected().latency_spikes;

    for call in 1..=3 {
        let (response, served) = client.predict_single_traced("VM_P95UTIL", &inputs);
        assert_eq!(response, PredictionResponse::NoPrediction, "call {call}");
        assert_eq!(served, Served::Default, "call {call}");
    }
    assert_eq!(
        at(rc_obs::CLIENT_BREAKER_TRANSITIONS) - transitions0,
        1,
        "three deadline overruns trip the breaker open"
    );
    assert_eq!(client.open_breaker_count(), 1);
    assert_eq!(faulty.injector().injected().latency_spikes - spikes0, 3);

    for call in 4..=6 {
        let (response, served) = client.predict_single_traced("VM_P95UTIL", &inputs);
        assert_eq!(response, PredictionResponse::NoPrediction, "call {call}");
        assert_eq!(served, Served::Default, "call {call}");
    }
    assert_eq!(
        faulty.injector().injected().latency_spikes - spikes0,
        3,
        "an open breaker fails fast: rejected calls never reach the store"
    );

    let (response, _) = client.predict_single_traced("VM_P95UTIL", &inputs);
    assert_eq!(response, PredictionResponse::NoPrediction, "call 7's probe overruns too");
    assert_eq!(at(rc_obs::CLIENT_BREAKER_TRANSITIONS) - transitions0, 3, "probe reopens");
    assert_eq!(faulty.injector().injected().latency_spikes - spikes0, 4);
    assert_eq!(
        at(rc_obs::STORE_INJECTED_LATENCY_SPIKES) - spikes_reg0,
        4,
        "the injector's registry counter must match its own tally"
    );

    // Exact reconciliation: all seven lookups degraded to defaults — no
    // fresh serve ever slipped through a blown deadline.
    let lookups = at(rc_obs::CLIENT_LOOKUPS) - lookups0;
    let defaults = at(rc_obs::CLIENT_DEFAULTS) - defaults0;
    assert_eq!(lookups, 7);
    assert_eq!(defaults, 7);
    assert_eq!(at(rc_obs::CLIENT_FRESH_FETCHES) - fresh0, 0);
    assert_eq!(at(rc_obs::CLIENT_STALE_SERVES) - stale0, 0);
    assert_eq!(at(rc_obs::CLIENT_RESULT_CACHE_HITS) - hits0, 0);
    assert_eq!(client.retry_count(), 0, "max_attempts = 1 leaves no room for retries");
    assert_eq!(client.store_fallback_count(), 7, "every failed pull fell through to (no) disk");
}

#[test]
fn corrupted_disk_entry_is_skipped_and_counted() {
    let _gate = gate();
    let (trace, store) = world();
    let _restore = AvailabilityGuard(store);
    let dir = temp_dir("corrupt_disk");
    let config = ClientConfig { disk_cache_dir: Some(dir.clone()), ..ClientConfig::default() };

    // Healthy first client mirrors all six models (and the feature blob)
    // to disk, and tells us a subscription that predicts.
    let inputs = {
        let first = RcClient::new(store.clone(), config.clone());
        assert!(first.initialize());
        assert_eq!(first.get_available_models().len(), 6);
        (0..trace.n_vms() as u64)
            .map(|id| vm_inputs(trace, VmId(id)))
            .find(|inputs| first.predict_single("VM_P95UTIL", inputs).is_predicted())
            .expect("some subscription must be predictable")
    };

    // Scribble over the persisted VM_AVGUTIL model: a torn/bit-rotted
    // entry must fail the frame checksum, not decode.
    let target = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("model_") && name.contains("AVGUTIL")
        })
        .expect("the disk cache must hold the VM_AVGUTIL model")
        .path();
    std::fs::write(&target, b"this is not a framed cache entry at all").unwrap();

    // Outage: a fresh client can only come up from disk.
    store.set_available(false);
    let second = RcClient::new(store.clone(), config);
    assert!(second.initialize(), "five intact models are plenty to come up");
    assert!(second.corrupt_payload_count() >= 1, "the mangled entry must be counted");
    let models = second.get_available_models();
    assert_eq!(models.len(), 5, "exactly the corrupt model is missing: {models:?}");
    assert!(!models.contains(&"VM_AVGUTIL".to_string()));

    // The corrupt model degrades to the default; the others still serve.
    assert_eq!(second.predict_single("VM_AVGUTIL", &inputs), PredictionResponse::NoPrediction);
    assert!(second.predict_single("VM_P95UTIL", &inputs).is_predicted());
    let _ = std::fs::remove_dir_all(&dir);
}
