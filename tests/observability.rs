//! Cross-crate observability integration: the accuracy feedback loop
//! through the simulator, prediction-counter reconciliation through the
//! client, and hierarchical publish spans through the pipeline.

use std::sync::Arc;

use rc_core::labels::vm_inputs;
use rc_obs::{AccuracyTracker, DriftConfig, DriftSignal};
use rc_scheduler::P95Source;
use rc_trace::UtilParams;
use rc_types::time::Timestamp;
use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmId, VmRole};
use resource_central::prelude::*;

/// Oracle until `switch_at`, then a deterministic wrong bucket — the
/// "mid-run swap to a degraded model" the drift monitor must catch.
struct SwitchSource {
    switch_at: Timestamp,
}

impl P95Source for SwitchSource {
    fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)> {
        if req.created.as_secs() < self.switch_at.as_secs() {
            Some((req.true_p95_bucket, 1.0))
        } else {
            let h = req.vm_id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33;
            Some(((req.true_p95_bucket + 1 + (h % 3) as usize) % 4, 1.0))
        }
    }
}

/// One small non-production VM arriving at `t` and living five minutes.
fn short_vm(i: u64) -> VmRequest {
    let created = Timestamp::from_secs(i * 60);
    VmRequest {
        vm_id: VmId(i),
        cores: 2,
        memory_gb: 3.5,
        prod: ProdTag::NonProduction,
        created,
        deleted: Timestamp::from_secs(created.as_secs() + 300),
        util: UtilParams::creation_test(i),
        inputs: ClientInputs {
            subscription: SubscriptionId((i % 16) as u32),
            party: Party::First,
            role: VmRole::Iaas,
            prod: ProdTag::NonProduction,
            os: OsType::Linux,
            sku_index: 2,
            deployment_time: created,
            deployment_size_hint: 1,
            service: None,
        },
        true_p95_bucket: 0,
    }
}

/// §ISSUE acceptance: a mid-run swap to a degraded prediction source
/// must flip the rolling drift signal while cumulative accuracy alone
/// stays within tolerance of the training-time baseline.
#[test]
fn mid_run_model_swap_trips_rolling_drift_but_not_cumulative() {
    // 24 hours of arrivals, one per minute; the source turns wrong for
    // the last three hours (180 of 1440 predictions = 12.5%).
    let requests: Vec<VmRequest> = (0..1440).map(short_vm).collect();
    let switch_at = Timestamp::from_secs(21 * 3600);

    let tracker = Arc::new(AccuracyTracker::new(DriftConfig::default()));
    tracker.set_baseline("VM_P95UTIL", 0.95);
    let config = SimConfig {
        n_servers: 8,
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 1,
        obs_tick_secs: 3600, // hourly epochs on the simulated clock
        accuracy: Some(tracker.clone()),
    };
    let report = simulate(
        &requests,
        &config,
        Box::new(SwitchSource { switch_at }),
        (Timestamp::ZERO, Timestamp::from_secs(90_000)),
    );
    assert_eq!(report.n_failures, 0, "the cluster is sized to place everything");

    // Every placement was confident, every VM resolved.
    assert_eq!(tracker.predictions("VM_P95UTIL"), 1440);
    assert_eq!(tracker.outcomes("VM_P95UTIL"), 1440);
    assert_eq!(tracker.pending("VM_P95UTIL"), 0);

    let cumulative = tracker.cumulative_accuracy("VM_P95UTIL").expect("outcomes recorded");
    let rolling = tracker.rolling_accuracy("VM_P95UTIL").expect("windowed outcomes");
    let threshold = 0.95 - DriftConfig::default().tolerance;
    // Cumulative accuracy alone would NOT flag the swap...
    assert!(
        cumulative >= threshold,
        "cumulative {cumulative:.3} dipped below the drift threshold {threshold:.3}"
    );
    // ...but the rolling window has collapsed and the signal tripped.
    assert!(rolling < threshold, "rolling {rolling:.3} should sit below {threshold:.3}");
    assert_eq!(tracker.drift("VM_P95UTIL"), DriftSignal::Drifting);

    // The tracker's gauges are visible in its registry snapshot and in
    // Prometheus exposition.
    let snapshot = tracker.registry().snapshot();
    let drift_gauge = rc_obs::acc_gauge_name(rc_obs::ACC_DRIFT, "VM_P95UTIL");
    let drifting =
        snapshot.gauges.iter().find(|g| g.name == drift_gauge).expect("drift gauge exported").value;
    assert_eq!(drifting, 1.0);
    let text = snapshot.to_prometheus_text();
    assert!(text.contains("rc_acc_rolling{metric=\"VM_P95UTIL\"}"));
    assert!(text.contains("rc_acc_confusion{metric=\"VM_P95UTIL\""));

    // The simulator's windowed instruments landed in the global registry
    // and show up in both snapshot and exposition formats.
    let global = rc_obs::global().snapshot();
    let placements = global
        .windowed_counter(rc_obs::SCHED_PLACEMENTS_WINDOWED)
        .expect("windowed placements registered");
    assert!(placements.total >= 1440);
    assert!(global.to_prometheus_text().contains("rc_sched_placements_windowed_total"));
}

/// Satellite: the accuracy tracker's confusion matrix (row and column
/// sums) reconciles exactly with the `rc_client_predictions` registry
/// delta when the tracker is fed one pair per predicted response.
#[test]
fn confusion_sums_reconcile_with_client_prediction_deltas() {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 3_000,
        n_subscriptions: 150,
        days: 18,
        ..TraceConfig::small()
    });
    let output = run_pipeline(&trace, &PipelineConfig::fast(18)).expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    // Manifest-seeded baselines land in the process-global tracker.
    for report in &output.reports {
        let seeded = rc_obs::global_accuracy().baseline(report.metric.model_name());
        assert_eq!(seeded, Some(report.accuracy), "{} baseline", report.metric.model_name());
    }

    let tracker = AccuracyTracker::new(DriftConfig::default());
    let model = PredictionMetric::P95MaxCpuUtil.model_name();
    let registry = rc_obs::global();
    let before = registry.snapshot();
    let mut served = 0u64;
    for id in trace.vm_ids().take(600) {
        match client.predict_single(model, &vm_inputs(&trace, id)) {
            PredictionResponse::Predicted(p) => {
                served += 1;
                tracker.record_prediction(model, id.0, p.value);
                // Synthetic ground truth spread across buckets: the
                // reconciliation below is about counts, not accuracy.
                tracker.record_outcome(model, id.0, (p.value + id.0 as usize) % 4);
            }
            PredictionResponse::NoPrediction => {}
        }
    }
    let after = registry.snapshot();

    let delta = after.counter(rc_obs::CLIENT_PREDICTIONS).unwrap_or(0)
        - before.counter(rc_obs::CLIENT_PREDICTIONS).unwrap_or(0);
    assert!(served > 0, "the replay should produce predictions");
    assert_eq!(delta, served, "rc_client_predictions counts exactly the Predicted responses");

    let confusion = tracker.confusion(model);
    let row_total: u64 = confusion.iter().map(|row| row.iter().sum::<u64>()).sum();
    let n_cols = confusion.iter().map(Vec::len).max().unwrap_or(0);
    let col_total: u64 = (0..n_cols)
        .map(|c| confusion.iter().map(|row| row.get(c).copied().unwrap_or(0)).sum::<u64>())
        .sum();
    assert_eq!(row_total, delta, "confusion row sums match the registry delta");
    assert_eq!(col_total, delta, "confusion column sums match the registry delta");
    assert_eq!(tracker.outcomes(model), delta);

    // The client's in-flight gauge returned to zero once the replay
    // finished (every entry balanced by an exit).
    let inflight = after.gauge(rc_obs::CLIENT_INFLIGHT).unwrap_or(0.0);
    assert_eq!(inflight, 0.0);
}

/// Satellite: publish decomposes into child spans that record their
/// parent's seq, so the pipeline publish → gate → store-write hierarchy
/// can be reassembled from the trace dump.
#[test]
fn publish_spans_nest_under_one_parent() {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 3_000,
        n_subscriptions: 150,
        days: 18,
        ..TraceConfig::small()
    });
    let output = run_pipeline(&trace, &PipelineConfig::fast(18)).expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");

    let events = rc_obs::global_tracer().events();
    let parents: Vec<u64> =
        events.iter().filter(|e| e.name == "pipeline.publish").map(|e| e.seq).collect();
    assert!(!parents.is_empty(), "the publish recorded its parent span");
    let nested = parents.iter().any(|&p| {
        ["publish.gate", "publish.payloads", "publish.flip"]
            .iter()
            .all(|child| events.iter().any(|e| e.name == *child && e.parent_seq == Some(p)))
    });
    assert!(nested, "gate/payloads/flip spans must all record the publish parent seq");
    for e in events.iter().filter(|e| e.name.starts_with("publish.")) {
        assert!(e.duration_ns.is_some(), "{} is a span, not an event", e.name);
    }
}
