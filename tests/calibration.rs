//! Trace-vs-paper calibration: the generated workload must reproduce the
//! anchor points the paper reports for Figures 1–8 and §3.1's statistics.
//!
//! Tolerances are deliberately generous — a synthetic trace at 1/1000th
//! of Azure's scale carries sampling noise, and a handful of busy
//! subscriptions dominate VM counts by design (§3.4 notes exactly such a
//! service) — but the *shape* assertions (orderings, knees, signs) are
//! strict: those are what the downstream results depend on.

use rc_analysis as analysis;
use resource_central::prelude::*;

fn trace() -> Trace {
    Trace::generate(&TraceConfig {
        seed: 0xCAFE,
        days: 45,
        n_subscriptions: 1_200,
        target_vms: 30_000,
        n_regions: 3,
    })
}

#[test]
fn figure1_utilization_cdf_anchors() {
    let t = trace();
    let cdfs = analysis::utilization_cdfs(&t);
    // "60% of the VMs have an average CPU utilization lower than 20%."
    let below_20 = cdfs.avg.all.fraction_below(0.20);
    assert!((0.45..0.75).contains(&below_20), "avg<20%: {below_20}");
    // "40% of them have a 95th-percentile utilization lower than 50%."
    let p95_below_50 = cdfs.p95_max.all.fraction_below(0.50);
    assert!((0.28..0.52).contains(&p95_below_50), "p95<50%: {p95_below_50}");
    // "a large percentage of them exhibit very high utilizations (>80%)".
    let p95_above_80 = 1.0 - cdfs.p95_max.all.fraction_below(0.80);
    assert!(p95_above_80 > 0.25, "p95>80%: {p95_above_80}");
    // First-party curves sit above (lower utilization than) third-party.
    for x in [0.1, 0.3, 0.5, 0.7] {
        assert!(
            cdfs.avg.first.fraction_below(x) >= cdfs.avg.third.fraction_below(x) - 0.05,
            "first-party avg CDF must dominate at {x}"
        );
    }
}

#[test]
fn figures2_and_3_size_shares() {
    let t = trace();
    let cores = analysis::cores_breakdown(&t);
    // "almost 80% of VMs require 1-2 cores".
    let small = cores.all[0] + cores.all[1];
    assert!((0.68..0.9).contains(&small), "1-2 core share {small}");
    let memory = analysis::memory_breakdown(&t);
    // "70% of VMs require less than 4 GBytes".
    let small_mem: f64 = memory.all[..3].iter().sum();
    assert!((0.58..0.82).contains(&small_mem), "<4GB share {small_mem}");
    // §3.3's party differences (third-party picks more 0.75/3.5 GB, less
    // 1.75 GB) are a few percentage points — asserted on the calibrated
    // sampling weights in `rc-trace`'s unit tests, because one realization
    // with ~5k third-party VMs concentrated in a few subscriptions cannot
    // resolve them. Here, only assert 1.75 GB is a major category for both.
    assert!(memory.first[1] > 0.15 && memory.third[1] > 0.10);
}

#[test]
fn figure4_deployment_size_anchors() {
    let t = trace();
    let cdfs = analysis::deployment_size_cdfs(&t);
    // "roughly 40% of them include a single VM, and 80% have at most 5".
    let single = cdfs.all.fraction_below(1.0);
    assert!((0.30..0.60).contains(&single), "single-VM share {single}");
    let upto5 = cdfs.all.fraction_below(5.0);
    assert!((0.65..0.92).contains(&upto5), "<=5 VM share {upto5}");
    // "third-party users deploy VMs in smaller groups than first-party".
    assert!(cdfs.third.fraction_below(2.0) >= cdfs.first.fraction_below(2.0) - 0.05);
}

#[test]
fn figure5_lifetime_knee() {
    let t = trace();
    let cdfs = analysis::lifetime_cdfs(&t);
    // "more than 90% of lifetimes are shorter [than 1 day]".
    let below_day = cdfs.all.fraction_below(24.0);
    assert!(below_day > 0.85, "lifetimes < 1 day: {below_day}");
    // First-party VMs skew shorter (creation-test workloads, §3.5).
    assert!(
        cdfs.first.fraction_below(0.25) >= cdfs.third.fraction_below(0.25),
        "first-party short-lifetime share must dominate"
    );
    // The long tail exists: some VMs live for weeks.
    assert!(cdfs.all.max().unwrap() > 14.0 * 24.0);
}

#[test]
fn long_running_vms_hold_nearly_all_core_hours() {
    // §3.5: "the relatively small percentage of long-running VMs actually
    // account for >95% of the total core hours".
    let t = trace();
    let mut long_ch = 0.0;
    let mut total_ch = 0.0;
    for id in t.vm_ids() {
        let vm = t.vm(id);
        let end = vm.deleted.min(t.window_end());
        let ch = vm.sku.cores as f64 * end.since(vm.created).as_hours_f64();
        total_ch += ch;
        if vm.lifetime().as_days_f64() > 1.0 {
            long_ch += ch;
        }
    }
    let share = long_ch / total_ch;
    assert!(share > 0.85, ">1-day VMs hold {share} of core-hours");
}

#[test]
fn figure6_class_core_hour_shares() {
    let t = trace();
    let shares = analysis::class_core_hours(&t);
    // "delay-insensitive VMs consume most (roughly 68%) of the core hours"
    assert!((0.50..0.85).contains(&shares.total.delay_insensitive), "DI share {:?}", shares.total);
    // "a significant percentage ... consume roughly 28%".
    assert!(
        (0.10..0.45).contains(&shares.total.interactive),
        "interactive share {:?}",
        shares.total
    );
    // VMs running >=3 days consume ~94% of core-hours, so Unknown is small.
    assert!(shares.total.unknown < 0.25, "unknown share {:?}", shares.total);
}

#[test]
fn figure7_arrivals_are_diurnal_and_quieter_on_weekends() {
    let t = trace();
    // Week starting at day 5 (epoch is a Wednesday; day 5 is a Monday).
    let series = analysis::arrivals_per_hour(&t, rc_types::vm::RegionId(0), 5);
    assert_eq!(series.per_hour.len(), 168);
    let total: u64 = series.per_hour.iter().sum();
    assert!(total > 300, "need a meaningful arrival count, got {total}");
    // Weekday daytime (10:00-18:00) beats night (0:00-6:00). Measured
    // across the whole trace — a single region-week is dominated by a few
    // bursty deployments.
    let mut day = 0u64;
    let mut night = 0u64;
    for vm in &t.vms {
        if vm.created.is_weekend() {
            continue;
        }
        let h = vm.created.hour_of_day();
        if (10.0..18.0).contains(&h) {
            day += 1;
        } else if h < 6.0 {
            night += 1;
        }
    }
    assert!(day as f64 / 8.0 > night as f64 / 6.0 * 1.3, "day {day} vs night {night}");
    // Weekends are quieter. A single region-week is dominated by a few
    // bursty deployments, so measure across the whole trace instead.
    let (mut weekday, mut weekend) = (0u64, 0u64);
    let (mut weekday_days, mut weekend_days) = (0u64, 0u64);
    for d in 0..t.config.days as u64 {
        if rc_types::Timestamp::from_days(d).is_weekend() {
            weekend_days += 1;
        } else {
            weekday_days += 1;
        }
    }
    for vm in &t.vms {
        if vm.created.is_weekend() {
            weekend += 1;
        } else {
            weekday += 1;
        }
    }
    let wd_rate = weekday as f64 / weekday_days as f64;
    let we_rate = weekend as f64 / weekend_days as f64;
    assert!(we_rate < wd_rate * 0.85, "weekday {wd_rate}/day vs weekend {we_rate}/day");
}

#[test]
fn figure8_correlation_signs() {
    let t = trace();
    let m = analysis::metric_correlations(&t, None);
    // Strong positives: avg-p95 utilization, cores-memory.
    assert!(m.get("avg util", "p95 util").unwrap() > 0.35);
    assert!(m.get("cores", "memory").unwrap() > 0.5);
    // Lifetime has essentially no relationship with cores or memory.
    assert!(m.get("lifetime", "cores").unwrap().abs() < 0.3);
    // Interactive VMs tend to live longer (class is 1=DI, 2=interactive).
    assert!(m.get("class", "lifetime").unwrap() > -0.05);
    // Diagonal is exactly 1.
    for i in 0..m.labels.len() {
        assert_eq!(m.values[i][i], 1.0);
    }
}

#[test]
fn section31_vm_type_statistics() {
    let t = trace();
    let stats = analysis::vm_type_stats(&t);
    // "almost exactly split between IaaS (52%) and PaaS (48%)".
    assert!((0.42..0.62).contains(&stats.iaas_vm_share), "IaaS share {}", stats.iaas_vm_share);
    // "96% of the subscriptions create VMs of a single type".
    assert!(
        stats.single_type_subscription_fraction > 0.9,
        "single-type fraction {}",
        stats.single_type_subscription_fraction
    );
    // Third-party core-hours skew IaaS; first-party core-hours skew PaaS.
    assert!(
        stats.third_iaas_core_hour_share > stats.first_iaas_core_hour_share,
        "third {} vs first {}",
        stats.third_iaas_core_hour_share,
        stats.first_iaas_core_hour_share
    );
}

#[test]
fn subscriptions_are_behaviourally_consistent() {
    let t = trace();
    let report = analysis::subscription_consistency(&t);
    // §3.2: ~80% of subscriptions have avg-utilization CoV < 1.
    assert!(report.avg_util > 0.7, "avg util consistency {}", report.avg_util);
    // §3.3: nearly all subscriptions have cores/memory CoV < 1.
    assert!(report.cores > 0.85, "cores consistency {}", report.cores);
    assert!(report.memory > 0.85, "memory consistency {}", report.memory);
    // §3.5: ~75% have lifetime CoV < 1.
    assert!(report.lifetime > 0.6, "lifetime consistency {}", report.lifetime);
    // §3.4: nearly all have deployment-size CoV < 1.
    assert!(report.deployment_size > 0.7, "deployment consistency {}", report.deployment_size);
}
