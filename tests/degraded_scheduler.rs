//! End-to-end degradation: when the RC client goes `Offline` mid-run,
//! the RC-informed scheduler must degrade to exactly the behaviour it
//! would have with no prediction source at all (§4.3: RC is not on the
//! critical path; Algorithm 1 falls back to assuming full utilization).

use std::sync::atomic::{AtomicU64, Ordering};

use rc_scheduler::{NoSource, P95Source, RcSource};
use rc_types::time::Timestamp;
use resource_central::prelude::*;

fn world() -> (Trace, Store) {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 5_000,
        n_subscriptions: 200,
        days: 24,
        ..TraceConfig::small()
    });
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24)).unwrap();
    let store = Store::in_memory();
    output.publish(&store, 0.5).unwrap();
    (trace, store)
}

/// Live RC predictions until call `flip_at`, at which point the store
/// goes down and the client's caches are flushed — the client reports
/// `Offline` for the rest of the run.
struct OutageSource {
    inner: RcSource,
    store: Store,
    calls: AtomicU64,
    flip_at: u64,
}

impl P95Source for OutageSource {
    fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)> {
        if self.calls.fetch_add(1, Ordering::SeqCst) == self.flip_at {
            self.store.set_available(false);
            self.inner.client().flush_cache();
            assert!(self.inner.client().health().is_offline(), "flushed client must go Offline");
        }
        self.inner.predict_p95(req)
    }
}

/// The reference behaviour: the same live source for the first `flip_at`
/// calls, then a hard switch to `NoSource`.
struct SplitSource {
    inner: RcSource,
    calls: AtomicU64,
    flip_at: u64,
}

impl P95Source for SplitSource {
    fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)> {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.flip_at {
            self.inner.predict_p95(req)
        } else {
            NoSource.predict_p95(req)
        }
    }
}

#[test]
fn offline_client_degrades_scheduler_to_no_source_exactly() {
    let (trace, store) = world();
    let from = Timestamp::from_days(16);
    let until = Timestamp::from_days(24);
    let requests = VmRequest::stream(&trace, from, until, 16);
    assert!(requests.len() > 300, "need a real arrival stream, got {}", requests.len());
    let config = SimConfig {
        n_servers: suggest_server_count(&requests, 16.0, 1.0),
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 3,
        obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
        accuracy: None,
    };
    const FLIP_AT: u64 = 100;

    // Reference run first: it must not observe the outage the second run
    // inflicts on the shared store.
    let reference = {
        let client = RcClient::new(store.clone(), ClientConfig::default());
        assert!(client.initialize());
        let source = SplitSource {
            inner: RcSource::new(client),
            calls: AtomicU64::new(0),
            flip_at: FLIP_AT,
        };
        simulate(&requests, &config, Box::new(source), (from, until))
    };

    // Outage run: same simulation, but the source's RC client actually
    // loses its store and caches at the flip.
    let (outage, client) = {
        let client = RcClient::new(store.clone(), ClientConfig::default());
        assert!(client.initialize());
        let source = OutageSource {
            inner: RcSource::new(client.clone()),
            store: store.clone(),
            calls: AtomicU64::new(0),
            flip_at: FLIP_AT,
        };
        (simulate(&requests, &config, Box::new(source), (from, until)), client)
    };

    // The client really served predictions before the flip, and really
    // ended the run offline.
    assert!(client.lookup_count() > 0, "RC was never consulted before the outage");
    assert!(client.health().is_offline());

    // Identical placements, failures, readings — byte for byte. An
    // Offline client is indistinguishable from having no source.
    let reference_json = serde_json::to_vec(&reference).unwrap();
    let outage_json = serde_json::to_vec(&outage).unwrap();
    assert_eq!(
        reference_json, outage_json,
        "outage run diverged from the NoSource reference:\n  reference: {reference:?}\n  outage:    {outage:?}"
    );
    assert_eq!(outage.n_arrivals, requests.len() as u64);
}
