//! Acceptance tests for the continuous control loop (`rc-loop`).
//!
//! Each test scripts one lifecycle episode from the soak schedule and
//! asserts the loop's exact reaction through its journal, its counters,
//! and the store it manages:
//!
//! (a) a drift episode leads to retrain → shadow pass → promotion, and
//!     end-to-end accuracy recovers past the frozen no-retrain baseline;
//! (b) a degraded candidate is rejected in shadow with the store
//!     byte-untouched;
//! (c) a post-flip regression auto-rolls-back, and the quarantined
//!     content digest is blocked from ever re-promoting — bit-identical
//!     across two same-seed runs;
//! (d) a store outage mid-flip degrades exactly that tick, leaves the
//!     manifest consistent, and the loop keeps running.

use resource_central::lifecycle::{
    ChaosPlan, LoopConfig, LoopController, LoopEvent, RetrainReason, TickEvent, WorkloadShift,
};
use resource_central::prelude::*;
use resource_central::store::fingerprint;

/// The soak shape shrunk to integration-test size: drift-only retrains
/// (no cadence) unless a test opts back in, and windows just big enough
/// for the training pipeline.
fn base_config(seed: u64, ticks: u32) -> LoopConfig {
    LoopConfig {
        seed,
        ticks,
        window_days: 16,
        n_subscriptions: 80,
        window_vms: 2_200,
        eval_per_tick: 250,
        shadow_slice: 200,
        retrain_every: 0,
        watch_ticks: 3,
        ..LoopConfig::default()
    }
}

/// A transient repeat of the surge shift: same transform every episode,
/// so a drift-triggered retrain during any episode reproduces the same
/// model bytes — the property the quarantine check keys on.
fn episode(from_tick: u32, until_tick: u32) -> WorkloadShift {
    WorkloadShift { until_tick, ..WorkloadShift::surge(from_tick) }
}

fn events(journal: &[TickEvent]) -> Vec<(u32, &LoopEvent)> {
    journal.iter().map(|e| (e.tick, &e.event)).collect()
}

/// (a) Drift → retrain → shadow pass → promotion → recovery.
#[test]
fn drift_episode_retrains_and_accuracy_recovers() {
    let mut config = base_config(0xA11CE, 9);
    config.shifts = vec![WorkloadShift::surge(4)];
    let mut controller = LoopController::new(config);
    for _ in 0..9 {
        controller.run_tick();
    }
    let summary = controller.summary();

    // Bootstrap plus exactly one drift-triggered promotion; the watchdog
    // never fired.
    assert_eq!(summary.promotions, 2, "journal: {:?}", controller.journal());
    assert_eq!(summary.rollbacks, 0);
    assert_eq!(summary.windows_ingested, 9);

    // The journal tells the story in order: drift detected, a retrain
    // scheduled *because of* drift, then a promotion.
    let journal = events(controller.journal());
    let drift_at = journal
        .iter()
        .position(|(_, e)| matches!(e, LoopEvent::DriftDetected { .. }))
        .expect("the surge must trip the drift monitor");
    let retrain_at = journal[drift_at..]
        .iter()
        .position(|(_, e)| {
            matches!(e, LoopEvent::RetrainScheduled { reason: RetrainReason::Drift { .. } })
        })
        .expect("drift must schedule a retrain");
    assert!(
        journal[drift_at + retrain_at..]
            .iter()
            .any(|(_, e)| matches!(e, LoopEvent::Promoted { .. })),
        "the retrained candidate must win shadow and promote"
    );

    // Recovery within the remaining ticks: the drift signal cleared and
    // the loop beats the frozen first model end to end.
    let avg = rc_types::PredictionMetric::AvgCpuUtil.model_name();
    assert_ne!(controller.tracker().drift(avg), DriftSignal::Drifting);
    assert!(
        summary.live_accuracy > summary.frozen_accuracy,
        "loop {:.4} must beat frozen baseline {:.4}",
        summary.live_accuracy,
        summary.frozen_accuracy
    );
}

/// (b) A degraded candidate loses the shadow comparison and nothing —
/// not one byte — reaches the store.
#[test]
fn degraded_candidate_is_rejected_in_shadow_with_store_untouched() {
    let mut config = base_config(0xB0B, 5);
    config.retrain_every = 4;
    config.watch_ticks = 2;
    config.chaos = ChaosPlan { degrade_candidate_at: vec![4], ..ChaosPlan::default() };
    let mut controller = LoopController::new(config);
    for _ in 0..4 {
        controller.run_tick();
    }
    assert_eq!(controller.serving_version(), 1, "only the bootstrap promotion so far");

    let fp_before = fingerprint(controller.store());
    controller.run_tick(); // tick 4: cadence retrain on garbled telemetry
    let fp_after = fingerprint(controller.store());

    let journal = events(controller.journal());
    assert!(
        journal.iter().any(|(t, e)| *t == 4 && matches!(e, LoopEvent::ShadowRejected { .. })),
        "shadow must reject the degraded candidate: {journal:?}"
    );
    assert!(
        !journal.iter().any(|(t, e)| *t == 4 && matches!(e, LoopEvent::Promoted { .. })),
        "a rejected candidate must not promote"
    );
    assert_eq!(fp_before, fp_after, "shadow rejection must leave the store byte-untouched");
    assert_eq!(controller.serving_version(), 1);
    assert_eq!(controller.summary().shadow_rejections, 1);
}

/// (c) Post-flip regression: rollback, quarantine, and the quarantined
/// bytes never re-promote. The whole scenario is bit-identical across
/// two same-seed runs.
#[test]
fn regression_rolls_back_and_quarantine_blocks_repromotion() {
    let config = || {
        // Not every seed's fleet supports class labelling at this window
        // size; seed 7 does (see rc-loop's unit suite).
        let mut c = base_config(7, 14);
        // Two identical transient episodes. The first tricks the loop
        // into promoting an episode-fitted model that regresses when the
        // episode ends; the second forces a retrain that reproduces the
        // exact quarantined bytes.
        c.shifts = vec![episode(4, 6), episode(12, 14)];
        c
    };

    let run = || {
        let controller = {
            let mut c = LoopController::new(config());
            for _ in 0..14 {
                c.run_tick();
            }
            c
        };
        let journal: Vec<TickEvent> = controller.journal().to_vec();
        let summary = controller.summary();
        let digests = controller.quarantined_digests().to_vec();
        (journal, summary, digests)
    };

    let (journal, summary, digests) = run();
    let rolled = journal
        .iter()
        .find_map(|e| match &e.event {
            LoopEvent::RolledBack { quarantined_digest, .. } => Some(*quarantined_digest),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("the watchdog must roll the regressing promotion back: {journal:?}")
        });
    let blocked = journal
        .iter()
        .find_map(|e| match &e.event {
            LoopEvent::QuarantineBlocked { digest } => Some(*digest),
            _ => None,
        })
        .expect("the second episode must reproduce the quarantined bytes");
    assert_eq!(
        rolled, blocked,
        "the blocked candidate must be the exact content that was rolled back"
    );
    assert_eq!(digests, vec![rolled]);
    assert_eq!(summary.rollbacks, 1);
    assert_eq!(summary.quarantine_blocked, 1, "rc_loop_quarantine_blocked must fire");

    // Bit-identical reproducibility: journal, summary, and store.
    let (journal2, summary2, _) = run();
    assert_eq!(journal, journal2, "same seed must replay the same journal");
    assert_eq!(
        serde_json::to_vec(&summary).unwrap(),
        serde_json::to_vec(&summary2).unwrap(),
        "same seed must serialize the same summary, byte for byte"
    );
    assert_eq!(summary.store_fingerprint, summary2.store_fingerprint);
}

/// (d) The store dies mid-flip: the tick degrades, the manifest stays
/// consistent, and the very next tick publishes normally.
#[test]
fn store_outage_mid_flip_degrades_one_tick_and_manifest_stays_consistent() {
    let mut config = base_config(0xD00D, 3);
    // Allow three payload writes, then fail every put for the rest of
    // the tick — the flip dies before the manifest write.
    config.chaos = ChaosPlan { outage_after_puts: vec![(0, 3)], ..ChaosPlan::default() };
    let mut controller = LoopController::new(config);

    controller.run_tick();
    let journal = events(controller.journal());
    assert!(
        journal.iter().any(|(t, e)| *t == 0 && matches!(e, LoopEvent::PublishFailed { .. })),
        "the outage must abort the bootstrap flip: {journal:?}"
    );
    assert_eq!(
        Manifest::read_current(controller.store()).unwrap(),
        None,
        "an aborted first flip must not leave a manifest behind"
    );
    assert_eq!(controller.serving_version(), 0);

    // The loop is not wedged: the outage healed at tick end and the next
    // bootstrap attempt publishes a fully consistent version.
    controller.run_tick();
    controller.run_tick();
    let manifest = Manifest::read_current(controller.store())
        .unwrap()
        .expect("the retried bootstrap must publish");
    assert_eq!(manifest.version, 1);
    assert!(manifest.verify());
    for entry in &manifest.models {
        let key = format!("v{}/{}", manifest.version, entry.key);
        let rec = controller.store().get_latest(&key).expect("published payload present");
        assert_eq!(rc_store::checksum(&rec.data), entry.checksum, "payload matches manifest");
    }
    let summary = controller.summary();
    assert_eq!(summary.degraded_ticks, 1, "exactly the outage tick degrades");
    assert_eq!(summary.promotions, 1);
    assert_eq!(summary.windows_ingested, 3, "every tick ran to completion");
}
