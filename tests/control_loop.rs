//! Acceptance tests for the continuous control loop (`rc-loop`).
//!
//! Each test scripts one lifecycle episode from the soak schedule and
//! asserts the loop's exact reaction through its journal, its counters,
//! and the store it manages:
//!
//! (a) a drift episode leads to retrain → shadow pass → promotion, and
//!     end-to-end accuracy recovers past the frozen no-retrain baseline;
//! (b) a degraded candidate is rejected in shadow with the store
//!     byte-untouched;
//! (c) a post-flip regression auto-rolls-back, and the quarantined
//!     content digest is blocked from ever re-promoting — bit-identical
//!     across two same-seed runs;
//! (d) a store outage mid-flip degrades exactly that tick, leaves the
//!     manifest consistent, and the loop keeps running;
//! (e) on a slowly ramping workload shift, the leading (input-sketch)
//!     monitor trips ticks before the label-based drift monitor can;
//! (f) the widened chaos plan — correlated brownout, clock skew,
//!     degrading telemetry, a racing manual publish — journals every
//!     fault, bounds the damage, and never wedges the loop.
//!
//! Tests that script the *label* pathway pin `leading_observe_only` so
//! the leading monitor (which otherwise reacts first, by design) records
//! but does not preempt the episode.

use resource_central::lifecycle::{
    ChaosPlan, LoopConfig, LoopController, LoopEvent, RetrainReason, TickEvent, WorkloadShift,
};
use resource_central::prelude::*;
use resource_central::store::fingerprint;

/// The soak shape shrunk to integration-test size: drift-only retrains
/// (no cadence) unless a test opts back in, and windows just big enough
/// for the training pipeline.
fn base_config(seed: u64, ticks: u32) -> LoopConfig {
    LoopConfig {
        seed,
        ticks,
        window_days: 16,
        n_subscriptions: 80,
        window_vms: 2_200,
        eval_per_tick: 250,
        shadow_slice: 200,
        retrain_every: 0,
        watch_ticks: 3,
        ..LoopConfig::default()
    }
}

/// A transient repeat of the surge shift: same transform every episode,
/// so a drift-triggered retrain during any episode reproduces the same
/// model bytes — the property the quarantine check keys on.
fn episode(from_tick: u32, until_tick: u32) -> WorkloadShift {
    WorkloadShift { until_tick, ..WorkloadShift::surge(from_tick) }
}

fn events(journal: &[TickEvent]) -> Vec<(u32, &LoopEvent)> {
    journal.iter().map(|e| (e.tick, &e.event)).collect()
}

/// (a) Drift → retrain → shadow pass → promotion → recovery.
#[test]
fn drift_episode_retrains_and_accuracy_recovers() {
    let mut config = base_config(0xA11CE, 9);
    config.shifts = vec![WorkloadShift::surge(4)];
    // This test scripts the label pathway; the leading monitor watches
    // but does not act, and must still see the shift no later than the
    // label detector does.
    config.leading_observe_only = true;
    let mut controller = LoopController::new(config);
    for _ in 0..9 {
        controller.run_tick();
    }
    let summary = controller.summary();

    // Bootstrap plus exactly one drift-triggered promotion; the watchdog
    // never fired.
    assert_eq!(summary.promotions, 2, "journal: {:?}", controller.journal());
    assert_eq!(summary.rollbacks, 0);
    assert_eq!(summary.windows_ingested, 9);

    // The journal tells the story in order: drift detected, a retrain
    // scheduled *because of* drift, then a promotion.
    let journal = events(controller.journal());
    let drift_at = journal
        .iter()
        .position(|(_, e)| matches!(e, LoopEvent::DriftDetected { .. }))
        .expect("the surge must trip the drift monitor");
    let leading_at = journal
        .iter()
        .position(|(_, e)| matches!(e, LoopEvent::LeadingDriftDetected { .. }))
        .expect("the input sketch must see the surge too");
    assert!(
        journal[leading_at].0 <= journal[drift_at].0,
        "the leading signal must fire no later than label drift (leading t{}, label t{})",
        journal[leading_at].0,
        journal[drift_at].0
    );
    let retrain_at = journal[drift_at..]
        .iter()
        .position(|(_, e)| {
            matches!(e, LoopEvent::RetrainScheduled { reason: RetrainReason::Drift { .. } })
        })
        .expect("drift must schedule a retrain");
    assert!(
        journal[drift_at + retrain_at..]
            .iter()
            .any(|(_, e)| matches!(e, LoopEvent::Promoted { .. })),
        "the retrained candidate must win shadow and promote"
    );

    // Recovery within the remaining ticks: the drift signal cleared and
    // the loop beats the frozen first model end to end.
    let avg = rc_types::PredictionMetric::AvgCpuUtil.model_name();
    assert_ne!(controller.tracker().drift(avg), DriftSignal::Drifting);
    assert!(
        summary.live_accuracy > summary.frozen_accuracy,
        "loop {:.4} must beat frozen baseline {:.4}",
        summary.live_accuracy,
        summary.frozen_accuracy
    );
}

/// (b) A degraded candidate loses the shadow comparison and nothing —
/// not one byte — reaches the store.
#[test]
fn degraded_candidate_is_rejected_in_shadow_with_store_untouched() {
    let mut config = base_config(0xB0B, 5);
    config.retrain_every = 4;
    config.watch_ticks = 2;
    config.chaos = ChaosPlan { degrade_candidate_at: vec![4], ..ChaosPlan::default() };
    let mut controller = LoopController::new(config);
    for _ in 0..4 {
        controller.run_tick();
    }
    assert_eq!(controller.serving_version(), 1, "only the bootstrap promotion so far");

    let fp_before = fingerprint(controller.store());
    controller.run_tick(); // tick 4: cadence retrain on garbled telemetry
    let fp_after = fingerprint(controller.store());

    let journal = events(controller.journal());
    assert!(
        journal.iter().any(|(t, e)| *t == 4 && matches!(e, LoopEvent::ShadowRejected { .. })),
        "shadow must reject the degraded candidate: {journal:?}"
    );
    assert!(
        !journal.iter().any(|(t, e)| *t == 4 && matches!(e, LoopEvent::Promoted { .. })),
        "a rejected candidate must not promote"
    );
    assert_eq!(fp_before, fp_after, "shadow rejection must leave the store byte-untouched");
    assert_eq!(controller.serving_version(), 1);
    assert_eq!(controller.summary().shadow_rejections, 1);
}

/// (c) Post-flip regression: rollback, quarantine, and the quarantined
/// bytes never re-promote. The whole scenario is bit-identical across
/// two same-seed runs.
#[test]
fn regression_rolls_back_and_quarantine_blocks_repromotion() {
    let config = || {
        // Not every seed's fleet supports class labelling at this window
        // size; seed 7 does (see rc-loop's unit suite).
        let mut c = base_config(7, 14);
        // Two identical transient episodes. The first tricks the loop
        // into promoting an episode-fitted model that regresses when the
        // episode ends; the second forces a retrain that reproduces the
        // exact quarantined bytes. Label pathway: the episode timing
        // below is keyed to the label monitor's trip ticks.
        c.leading_observe_only = true;
        c.shifts = vec![episode(4, 6), episode(12, 14)];
        c
    };

    let run = || {
        let controller = {
            let mut c = LoopController::new(config());
            for _ in 0..14 {
                c.run_tick();
            }
            c
        };
        let journal: Vec<TickEvent> = controller.journal().to_vec();
        let summary = controller.summary();
        let digests = controller.quarantined_digests().to_vec();
        (journal, summary, digests)
    };

    let (journal, summary, digests) = run();
    let rolled = journal
        .iter()
        .find_map(|e| match &e.event {
            LoopEvent::RolledBack { quarantined_digest, .. } => Some(*quarantined_digest),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("the watchdog must roll the regressing promotion back: {journal:?}")
        });
    let blocked = journal
        .iter()
        .find_map(|e| match &e.event {
            LoopEvent::QuarantineBlocked { digest } => Some(*digest),
            _ => None,
        })
        .expect("the second episode must reproduce the quarantined bytes");
    assert_eq!(
        rolled, blocked,
        "the blocked candidate must be the exact content that was rolled back"
    );
    assert_eq!(digests, vec![rolled]);
    assert_eq!(summary.rollbacks, 1);
    assert_eq!(summary.quarantine_blocked, 1, "rc_loop_quarantine_blocked must fire");

    // Bit-identical reproducibility: journal, summary, and store.
    let (journal2, summary2, _) = run();
    assert_eq!(journal, journal2, "same seed must replay the same journal");
    assert_eq!(
        serde_json::to_vec(&summary).unwrap(),
        serde_json::to_vec(&summary2).unwrap(),
        "same seed must serialize the same summary, byte for byte"
    );
    assert_eq!(summary.store_fingerprint, summary2.store_fingerprint);
}

/// (d) The store dies mid-flip: the tick degrades, the manifest stays
/// consistent, and the very next tick publishes normally.
#[test]
fn store_outage_mid_flip_degrades_one_tick_and_manifest_stays_consistent() {
    let mut config = base_config(0xD00D, 3);
    // Allow three payload writes, then fail every put for the rest of
    // the tick — the flip dies before the manifest write.
    config.chaos = ChaosPlan { outage_after_puts: vec![(0, 3)], ..ChaosPlan::default() };
    let mut controller = LoopController::new(config);

    controller.run_tick();
    let journal = events(controller.journal());
    assert!(
        journal.iter().any(|(t, e)| *t == 0 && matches!(e, LoopEvent::PublishFailed { .. })),
        "the outage must abort the bootstrap flip: {journal:?}"
    );
    assert_eq!(
        Manifest::read_current(controller.store()).unwrap(),
        None,
        "an aborted first flip must not leave a manifest behind"
    );
    assert_eq!(controller.serving_version(), 0);

    // The loop is not wedged: the outage healed at tick end and the next
    // bootstrap attempt publishes a fully consistent version.
    controller.run_tick();
    controller.run_tick();
    let manifest = Manifest::read_current(controller.store())
        .unwrap()
        .expect("the retried bootstrap must publish");
    assert_eq!(manifest.version, 1);
    assert!(manifest.verify());
    for entry in &manifest.models {
        let key = format!("v{}/{}", manifest.version, entry.key);
        let rec = controller.store().get_latest(&key).expect("published payload present");
        assert_eq!(rc_store::checksum(&rec.data), entry.checksum, "payload matches manifest");
    }
    let summary = controller.summary();
    assert_eq!(summary.degraded_ticks, 1, "exactly the outage tick degrades");
    assert_eq!(summary.promotions, 1);
    assert_eq!(summary.windows_ingested, 3, "every tick ran to completion");
}

/// (e) On a slowly shifting workload, the input-distribution sketch
/// trips ticks before the label-based monitor *can*: labels need
/// predictions to regress past the accuracy tolerance, the sketch only
/// needs the inputs to move. Observe-only keeps the race fair — the
/// leading monitor is not allowed to repair the drift before the label
/// monitor gets its chance.
#[test]
fn leading_drift_trips_ticks_before_label_drift_on_ramped_shift() {
    // Seed 0xA11CE's label monitor is quiet on an unshifted fleet
    // (test (a) above), so every detection below is of the shift itself.
    let mut config = base_config(0xA11CE, 20);
    // The workload distribution creeps via a slow telemetry-degradation
    // ramp (severity ~0.03/tick): per-VM bias moves the utilization
    // distribution immediately, but accuracy only erodes as the bias
    // decorrelates same-subscription VMs — the regime where a leading
    // indicator genuinely buys warning time. The monitor runs at a
    // sensitive trip threshold (the default 0.25 is the conservative
    // "moderate shift" setting); steady ticks sit below even this one.
    config.chaos = ChaosPlan { degrade_telemetry: vec![(5, 35)], ..ChaosPlan::default() };
    config.leading = rc_obs::LeadingDriftConfig {
        psi_trip: 0.05,
        psi_clear: 0.02,
        ..rc_obs::LeadingDriftConfig::default()
    };
    config.leading_observe_only = true;
    let mut controller = LoopController::new(config);
    for _ in 0..20 {
        controller.run_tick();
    }

    // Only detections from the shift onward count: label-noise blips
    // before the ramp begins are not detections of *this* fault.
    let journal = events(controller.journal());
    let leading_tick = journal
        .iter()
        .find(|(t, e)| *t >= 5 && matches!(e, LoopEvent::LeadingDriftDetected { .. }))
        .map(|(t, _)| *t)
        .expect("the ramp must trip the leading monitor");
    let label_tick = journal
        .iter()
        .find(|(t, e)| *t >= 5 && matches!(e, LoopEvent::DriftDetected { .. }))
        .map(|(t, _)| *t)
        .expect("the ramp must eventually trip label drift");
    assert!(
        label_tick >= leading_tick + 3,
        "the leading signal must buy at least 3 ticks of warning \
         (leading t{leading_tick}, label t{label_tick})"
    );
    assert!(controller.summary().leading_trips >= 1, "rc_loop_leading_trips must count");
}

/// (f) The widened chaos plan: every new fault kind — correlated
/// brownout, collector clock skew, slow telemetry degradation, a manual
/// publish racing the controller's flip — is journaled, bounded, and
/// survivable, and the whole scenario replays bit-identically.
#[test]
fn widened_chaos_plan_journals_every_fault_and_never_wedges() {
    let config = || {
        // Seed 0xB0B's fleet is known to bootstrap at this window size
        // (test (b) above) and cadence-retrains at tick 4.
        let mut c = base_config(0xB0B, 8);
        c.retrain_every = 4;
        c.leading_observe_only = true;
        c.chaos = ChaosPlan {
            brownout_at: vec![(2, 5)],
            clock_skew_at: vec![3],
            // Tick 4 is a cadence retrain whose flip the manual publish
            // races; the loop must back off, not overwrite.
            manual_publish_at: vec![4],
            degrade_telemetry: vec![(5, 8)],
            ..ChaosPlan::default()
        };
        c
    };

    let run = || {
        let mut controller = LoopController::new(config());
        for _ in 0..8 {
            controller.run_tick();
        }
        let journal: Vec<TickEvent> = controller.journal().to_vec();
        let summary = controller.summary();
        (journal, summary)
    };
    let (journal, summary) = run();

    // Every fault kind left its journal line.
    let chaos_kinds: Vec<(u32, &str)> = journal
        .iter()
        .filter_map(|e| match &e.event {
            LoopEvent::ChaosInjected { kind } => Some((e.tick, kind.as_str())),
            _ => None,
        })
        .collect();
    assert!(chaos_kinds.contains(&(2, "brownout:shard5")), "kinds: {chaos_kinds:?}");
    assert!(chaos_kinds.contains(&(3, "clock_skew")));
    assert!(chaos_kinds.contains(&(4, "manual_publish")));
    assert!(
        chaos_kinds.iter().any(|(t, k)| *t >= 5 && k.starts_with("degrade_telemetry:")),
        "kinds: {chaos_kinds:?}"
    );

    // The race is detected, typed, and backed off: the tick degrades,
    // nothing promotes over the racer.
    assert_eq!(summary.publish_races, 1, "journal: {journal:?}");
    assert!(journal
        .iter()
        .any(|e| e.tick == 4 && matches!(e.event, LoopEvent::PublishRaceDetected { .. })));
    assert!(
        !journal.iter().any(|e| e.tick == 4 && matches!(e.event, LoopEvent::Promoted { .. })),
        "a raced flip must not promote"
    );

    // Blast radius: quiet faults stay quiet, the loop runs every tick,
    // and degradation is bounded to the ticks chaos actually touched.
    assert_eq!(summary.windows_ingested, 8, "the loop must never wedge");
    assert_eq!(summary.rollbacks, 0);
    assert!(
        summary.degraded_ticks <= 3,
        "chaos must bound degradation, got {} degraded ticks",
        summary.degraded_ticks
    );
    for tick in [2, 3] {
        assert!(
            journal.iter().any(|e| e.tick == tick
                && matches!(e.event, LoopEvent::WindowIngested { vms, .. } if vms > 0)),
            "brownout/skew ticks must still ingest"
        );
    }

    // Bit-identical replay, chaos and all.
    let (journal2, summary2) = run();
    assert_eq!(journal, journal2, "same seed must replay the same chaos journal");
    assert_eq!(summary.journal_digest, summary2.journal_digest);
    assert_eq!(summary.store_fingerprint, summary2.store_fingerprint);
}
