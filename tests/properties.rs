//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use rc_analysis::{spearman, Cdf};
use rc_core::{Prediction, ResultCache};
use rc_ml::fft::{fft_in_place, Complex};
use rc_ml::Classifier;
use rc_trace::arrival::gamma_fn;
use rc_trace::UtilParams;
use rc_types::buckets::{
    Bucketizer, DeploymentSizeBucketizer, LifetimeBucketizer, UtilizationBucketizer,
};
use rc_types::telemetry::UtilReading;
use rc_types::time::{Duration, Timestamp};

proptest! {
    // --- Bucketizers: total and monotone (Table 3 semantics) ---

    #[test]
    fn utilization_bucketizer_is_total_and_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let bz = UtilizationBucketizer;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bz.bucket(&lo) < bz.n_buckets());
        prop_assert!(bz.bucket(&lo) <= bz.bucket(&hi));
    }

    #[test]
    fn lifetime_bucketizer_is_total_and_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let bz = LifetimeBucketizer;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (dl, dh) = (Duration::from_secs(lo), Duration::from_secs(hi));
        prop_assert!(bz.bucket(&dl) < bz.n_buckets());
        prop_assert!(bz.bucket(&dl) <= bz.bucket(&dh));
    }

    #[test]
    fn deployment_bucketizer_is_total_and_monotone(a in 0u64..100_000, b in 0u64..100_000) {
        let bz = DeploymentSizeBucketizer;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bz.bucket(&lo) < bz.n_buckets());
        prop_assert!(bz.bucket(&lo) <= bz.bucket(&hi));
    }

    // --- Telemetry invariants ---

    #[test]
    fn util_reading_always_restores_invariants(
        min in -2.0f64..2.0,
        avg in -2.0f64..2.0,
        max in -2.0f64..2.0,
    ) {
        let r = UtilReading::new(Timestamp::ZERO, min, avg, max);
        prop_assert!(r.is_valid(), "reading {r:?}");
    }

    #[test]
    fn util_model_readings_are_always_valid(
        seed in any::<u64>(),
        burst_seed in any::<u64>(),
        base in 0.0f64..1.5,
        p95 in 0.0f64..1.5,
        amplitude in 0.0f64..2.0,
        noise in 0.0f64..0.5,
        slot in 0u64..100_000,
    ) {
        let params = UtilParams {
            seed,
            burst_seed,
            base,
            p95_level: p95,
            diurnal_amplitude: amplitude,
            peak_hour: 14.0,
            noise,
        }
        .sanitized();
        let r = params.reading(slot);
        prop_assert!(r.is_valid(), "params {params:?} slot {slot} -> {r:?}");
        // Determinism.
        prop_assert_eq!(r, params.reading(slot));
    }

    // --- Statistics ---

    #[test]
    fn cdf_is_monotone_and_bounded(mut samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::new(samples.clone());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &samples {
            let f = cdf.fraction_below(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        prop_assert_eq!(cdf.fraction_below(f64::MAX), 1.0);
    }

    #[test]
    fn spearman_is_bounded_and_symmetric(
        xs in proptest::collection::vec(-1e3f64..1e3, 3..50),
        seed in any::<u64>(),
    ) {
        // Build ys as a deterministic shuffle-ish transform of xs.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x * (((seed >> (i % 60)) & 1) as f64 * 2.0 - 1.0))
            .collect();
        let r = spearman(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        let r_sym = spearman(&ys, &xs);
        prop_assert!((r - r_sym).abs() < 1e-9);
    }

    #[test]
    fn gamma_satisfies_recurrence(x in 0.1f64..20.0) {
        // Gamma(x + 1) = x * Gamma(x).
        let lhs = gamma_fn(x + 1.0);
        let rhs = x * gamma_fn(x);
        prop_assert!((lhs - rhs).abs() / rhs.abs().max(1e-12) < 1e-8, "x = {x}");
    }

    // --- FFT ---

    #[test]
    fn fft_round_trips(values in proptest::collection::vec(-100.0f64..100.0, 1..6)) {
        // Pad to a power of two >= 8.
        let n = (values.len().next_power_of_two()).max(8);
        let mut data: Vec<Complex> = values
            .iter()
            .map(|&v| Complex::new(v, 0.0))
            .chain(std::iter::repeat(Complex::new(0.0, 0.0)))
            .take(n)
            .collect();
        let orig = data.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-7);
            prop_assert!(a.im.abs() < 1e-7);
        }
    }

    // --- Result cache ---

    #[test]
    fn result_cache_respects_capacity(
        capacity in 1usize..64,
        ops in proptest::collection::vec((any::<u64>(), 0usize..4), 1..300),
    ) {
        let mut cache = ResultCache::new(capacity);
        for (key, value) in ops {
            cache.insert(key, Prediction { value, score: 0.5 });
            prop_assert!(cache.len() <= capacity);
            // Whatever was just inserted is retrievable.
            prop_assert_eq!(cache.get(key).map(|p| p.value), Some(value));
        }
    }

    // --- Store ---

    #[test]
    fn store_versions_are_dense_and_monotone(n in 1usize..40) {
        let store = rc_store::Store::in_memory();
        for i in 0..n {
            let v = store.put("k", Vec::from([i as u8]).into()).unwrap();
            prop_assert_eq!(v, i as u64 + 1);
        }
        prop_assert_eq!(store.latest_version("k"), Some(n as u64));
        // Every historical version remains readable.
        for i in 1..=n as u64 {
            prop_assert!(store.get_version("k", i).is_ok());
        }
    }

    // --- Quarantine content digest ---

    // The re-promotion check compares a candidate digest (trainer output
    // order) against a quarantined manifest digest (store read-back
    // order). The digest must therefore be a function of the *set*:
    // invariant under reordering, sensitive to any content change.
    #[test]
    fn models_digest_is_order_invariant_and_content_sensitive(
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..8),
        shuffle_seed in any::<u64>(),
        victim in any::<u64>(),
    ) {
        let entries: Vec<(String, u64)> =
            raw.iter().map(|&(k, sum)| (format!("model/{k:016x}"), sum)).collect();
        let baseline = rc_store::models_digest(entries.clone());

        // Any permutation digests identically.
        let mut shuffled = entries.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        prop_assert_eq!(rc_store::models_digest(shuffled), baseline);

        // Flipping one bit of one checksum changes the digest.
        let mut changed = entries;
        let i = victim as usize % changed.len();
        changed[i].1 ^= 1;
        prop_assert!(rc_store::models_digest(changed) != baseline);
    }
}

// Non-proptest invariants that still sweep a broad space.

/// Forest probabilities stay on the simplex for arbitrary inputs, even
/// far outside the training distribution.
#[test]
fn forest_probabilities_on_simplex_for_wild_inputs() {
    use rc_ml::{BinnedDataset, Dataset, RandomForest, RandomForestConfig};
    let mut d = Dataset::new(3, 3);
    let mut state = 5u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
    };
    for _ in 0..300 {
        let x = next() * 2.0;
        let c = ((x + 1.0).clamp(0.0, 2.999) * 1.5) as usize;
        d.push(&[x, next(), next()], c.min(2));
    }
    let binned = BinnedDataset::build(&d);
    let forest =
        RandomForest::fit(&binned, &RandomForestConfig { n_trees: 6, ..Default::default() });
    for wild in [
        [f64::MAX, f64::MIN, 0.0],
        [-1e300, 1e300, 1e-300],
        [0.0, 0.0, 0.0],
        [f64::EPSILON, -f64::EPSILON, 42.0],
    ] {
        let p = forest.predict_proba(&wild);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-5, "{p:?}");
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)), "{p:?}");
    }
}

/// Scheduler bookkeeping: place/complete sequences never drive a server's
/// accounting negative, and a fully drained server is exactly empty.
#[test]
fn server_accounting_is_conservative() {
    use rc_core::ClientInputs;
    use rc_scheduler::{Server, VmRequest};
    use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmId, VmRole};

    let request = |id: u64, cores: u32| VmRequest {
        vm_id: VmId(id),
        cores,
        memory_gb: cores as f64 * 1.75,
        prod: ProdTag::NonProduction,
        created: Timestamp::ZERO,
        deleted: Timestamp::from_hours(1),
        util: UtilParams::creation_test(id),
        inputs: ClientInputs {
            subscription: SubscriptionId(0),
            party: Party::First,
            role: VmRole::Iaas,
            prod: ProdTag::NonProduction,
            os: OsType::Linux,
            sku_index: 0,
            deployment_time: Timestamp::ZERO,
            deployment_size_hint: 1,
            service: None,
        },
        true_p95_bucket: 1,
    };

    let mut server = Server::new(16.0, 112.0);
    let mut resident = Vec::new();
    let mut state = 11u64;
    for step in 0..2_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        if !state.is_multiple_of(3) || resident.is_empty() {
            let cores = 1 + (state % 4) as u32;
            let req = request(step, cores);
            let util = cores as f64 * 0.5;
            server.place(&req, util);
            resident.push((req, util));
        } else {
            let idx = (state as usize / 7) % resident.len();
            let (req, util) = resident.swap_remove(idx);
            server.complete(&req, util);
        }
        assert!(server.alloc_cores >= 0.0);
        assert!(server.alloc_memory_gb >= 0.0);
        assert!(server.predicted_util_cores >= -1e-9);
        assert_eq!(server.n_vms as usize, resident.len());
    }
    for (req, util) in resident.drain(..) {
        server.complete(&req, util);
    }
    assert!(server.is_empty());
    assert_eq!(server.alloc_cores, 0.0);
    assert_eq!(server.predicted_util_cores, 0.0);
}
