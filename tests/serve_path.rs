//! Lock-free serve-path regressions: model swap-in racing
//! `predict_single`, zero heap allocations on the cache-hit path, and a
//! seeded concurrency stress of the RCU result cache with full-scan
//! oracle reconciliation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use rc_core::labels::vm_inputs;
use rc_core::{Prediction, ShardedResultCache};
use rc_types::vm::VmId;
use resource_central::prelude::*;

// Every allocation in this test binary goes through the counting
// allocator, so `hit_path_is_allocation_free` can observe the hot path
// exactly. The counter is per-thread: the other tests running
// concurrently in this binary never pollute the measurement.
#[global_allocator]
static ALLOC: rc_obs::CountingAllocator = rc_obs::CountingAllocator;

fn world() -> (Trace, Store, rc_core::PipelineOutput) {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 5_000,
        n_subscriptions: 200,
        days: 24,
        ..TraceConfig::small()
    });
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24)).unwrap();
    let store = Store::in_memory();
    output.publish(&store, 0.5).unwrap();
    (trace, store, output)
}

/// Regression: the serve state used to live in four separately locked
/// structures (models, features, staleness sets, manifest), so a reload
/// racing `predict_single` could observe version N models against
/// version N+1 features. The epoch-swapped [`ServeSnapshot`] publishes
/// them as one immutable value: while a writer flips manifest versions
/// as fast as it can, every concurrent prediction must still resolve —
/// no torn intermediate state ever answers `NoPrediction` — and must
/// attribute to a fully published generation, observed monotonically.
#[test]
fn model_swap_racing_predict_single_never_tears() {
    let (trace, store, output) = world();
    let client = RcClient::new(store.clone(), ClientConfig::default());
    assert!(client.initialize());
    let first_version = client.manifest_version().expect("manifest published");

    // Pre-pass: keep only inputs the initial version answers, so a
    // `NoPrediction` during the race can only mean torn serve state.
    let inputs: Vec<_> = (0..trace.n_vms() as u64)
        .map(|i| vm_inputs(&trace, VmId(i)))
        .filter(|inp| client.predict_single("VM_P95UTIL", inp).prediction().is_some())
        .take(512)
        .collect();
    assert!(inputs.len() >= 64, "world must answer a healthy share of inputs");
    let base_lookups = client.lookup_count();
    let base_defaults = client.no_prediction_count();

    const READERS: usize = 4;
    const FLIPS: usize = 25;
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(READERS + 1));
    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let client = client.clone();
            let inputs = inputs.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut last_generation = 0;
                let mut calls = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    i = (i + 1) % inputs.len();
                    let (response, _, generation) =
                        client.predict_single_attributed("VM_P95UTIL", &inputs[i]);
                    assert!(
                        response.prediction().is_some(),
                        "reader saw NoPrediction mid-swap: torn serve state"
                    );
                    assert!(generation >= 1, "responses attribute to a published generation");
                    assert!(
                        generation >= last_generation,
                        "snapshot generations must be observed monotonically \
                         ({generation} after {last_generation})"
                    );
                    last_generation = generation;
                    calls += 1;
                }
                calls
            })
        })
        .collect();

    barrier.wait();
    // Writer: republish (bumping the manifest version) and reload while
    // the readers hammer the serve path.
    for _ in 0..FLIPS {
        output.publish(&store, 0.5).expect("republish");
        client.force_reload_cache();
    }
    stop.store(true, Ordering::SeqCst);
    let reader_calls: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();

    let final_version = client.manifest_version().expect("manifest still published");
    assert_eq!(final_version, first_version + FLIPS as u64, "every flip published");

    // Degradation-ladder invariant across the whole race, from the
    // client's own exact counters: every lookup landed on exactly one
    // rung. (Defaults stay possible in general — just not in this test's
    // pre-filtered input set.)
    let lookups = client.lookup_count() - base_lookups;
    let stats = client.result_cache_stats();
    let answered = stats.hits
        + client.fresh_fetch_count()
        + client.stale_serve_count()
        + client.no_prediction_count();
    assert_eq!(lookups, reader_calls, "every reader call is one lookup");
    assert_eq!(
        answered,
        client.lookup_count(),
        "lookups == hits + fresh + stale + defaults, even racing swaps"
    );
    assert_eq!(
        client.no_prediction_count(),
        base_defaults,
        "the race window never fell through to the default rung"
    );
}

/// The headline hot-path claim, asserted by the counting allocator: once
/// a thread is warmed up (epoch slot registered, metrics handles
/// resolved), a cache-hit `predict_single` performs zero heap
/// allocations — and zero mutex/rwlock acquisitions, which the epoch
/// design guarantees structurally (the hit path only touches `ArcSwap`
/// loads and atomics).
#[test]
fn hit_path_is_allocation_free() {
    let (trace, store, _) = world();
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    let inp = vm_inputs(&trace, VmId(1));
    assert!(
        client.predict_single("VM_P95UTIL", &inp).prediction().is_some(),
        "probe input must resolve so the follow-ups are cache hits"
    );
    // Warm-up: registers this thread's epoch slot and touches every lazy
    // structure on the path; these calls may allocate.
    for _ in 0..64 {
        let _ = client.predict_single("VM_P95UTIL", &inp);
    }

    let before = rc_obs::thread_allocations();
    for _ in 0..10_000 {
        std::hint::black_box(client.predict_single("VM_P95UTIL", &inp));
    }
    let allocs = rc_obs::thread_allocations() - before;
    assert_eq!(allocs, 0, "cache-hit predict_single allocated {allocs} times in 10k calls");
}

/// Deterministic value for a stress key; a torn chunk publish would
/// surface as a key answering some other key's prediction.
fn oracle_prediction(key: u64) -> Prediction {
    Prediction { value: (key % 7) as usize, score: (key % 100) as f64 / 100.0 }
}

/// Seeded stress of the RCU result cache: concurrent get/insert/evict
/// across shards, then full-scan oracle reconciliation — every cached
/// value is the one its key deterministically maps to, the scan finds
/// exactly `len()` entries, entries never exceed capacity, and the exact
/// counters reconcile with the operations issued.
#[test]
fn rcu_cache_stress_reconciles_with_oracle() {
    const THREADS: u64 = 4;
    const OPS: u64 = 20_000;
    const KEYSPACE: u64 = 4_096;
    const CAPACITY: usize = 1_024;

    for seed in [0x5059_2017u64, 0xDEAD_BEEF, 0x1234_5678] {
        let cache = Arc::new(ShardedResultCache::new(CAPACITY, 8));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    // Thread-local xorshift stream; deterministic per
                    // (seed, thread).
                    let mut state = seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
                    let mut gets = 0u64;
                    let mut inserts = 0u64;
                    for _ in 0..OPS {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let key = state % KEYSPACE;
                        if state % 3 == 0 {
                            cache.insert(key, oracle_prediction(key));
                            inserts += 1;
                        } else {
                            if let Some(p) = cache.get(key) {
                                assert_eq!(
                                    p,
                                    oracle_prediction(key),
                                    "key {key} answered another key's value: torn snapshot"
                                );
                            }
                            gets += 1;
                        }
                    }
                    (gets, inserts)
                })
            })
            .collect();
        let (mut gets, mut inserts) = (0u64, 0u64);
        for handle in handles {
            let (g, i) = handle.join().unwrap();
            gets += g;
            inserts += i;
        }

        // Exact-counter reconciliation: every operation accounted for.
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, gets, "seed {seed:#x}: every get hit or missed");
        assert_eq!(stats.insertions, inserts, "seed {seed:#x}: every insert counted");
        assert!(cache.len() <= CAPACITY, "seed {seed:#x}: eviction kept the capacity bound");
        assert!(stats.evictions > 0, "seed {seed:#x}: keyspace 4x capacity must evict");

        // Full-scan oracle: walking the whole keyspace finds exactly the
        // entries the shards report live, each with its oracle value.
        let live = cache.len();
        let mut found = 0;
        for key in 0..KEYSPACE {
            if let Some(p) = cache.get(key) {
                assert_eq!(p, oracle_prediction(key), "seed {seed:#x}: scan found a torn value");
                found += 1;
            }
        }
        assert_eq!(found, live, "seed {seed:#x}: scan count must equal the shards' len()");
    }
}

/// The control loop's shadow evaluation must be invisible to the serve
/// path: `shadow_predict` scores a candidate against the live snapshot
/// without touching the result cache, the prediction counters, or any
/// client-visible state — and its serving-side answer agrees with what
/// `predict_single` serves for the same inputs.
#[test]
fn shadow_predict_never_perturbs_the_serving_client() {
    let (trace, store, output) = world();
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());
    let name = "VM_P95UTIL";
    let candidate = output
        .models
        .iter()
        .find(|m| m.spec.store_key() == "model/VM_P95UTIL")
        .expect("the published model set includes P95 util")
        .clone();

    // Resolve the serving answers first (these calls may count), then
    // snapshot every externally visible counter. Only fresh executions
    // are exact — the result cache is coarser than the feature vector
    // (§4.2 keys on the client inputs), so a Hit may answer for a
    // feature-similar sibling.
    let inputs: Vec<_> = (0..256).map(|i| vm_inputs(&trace, VmId(i))).collect();
    let served: Vec<_> = inputs.iter().map(|inp| client.predict_single_traced(name, inp)).collect();
    let before = (
        client.lookup_count(),
        client.model_exec_count(),
        client.no_prediction_count(),
        client.store_fallback_count(),
        client.stale_serve_count(),
    );

    let mut fresh = 0;
    for (inp, (response, how)) in inputs.iter().zip(&served) {
        let shadow = client.shadow_predict(name, inp, &candidate);
        if *how == Served::Fresh {
            fresh += 1;
            // The serving side of the comparison is exactly what the
            // serve path computed for these inputs.
            assert_eq!(shadow.serving, response.prediction(), "shadow must mirror the serve path");
            // The candidate here *is* the published model, so the two
            // sides of the comparison must agree completely.
            assert_eq!(shadow.candidate, shadow.serving);
        }
    }
    assert!(fresh >= 64, "enough fresh executions to make the comparison meaningful: {fresh}");

    let after = (
        client.lookup_count(),
        client.model_exec_count(),
        client.no_prediction_count(),
        client.store_fallback_count(),
        client.stale_serve_count(),
    );
    assert_eq!(before, after, "shadow evaluation must not move any client counter");
}
