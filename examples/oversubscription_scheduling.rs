//! The §5 case study at example scale: CPU oversubscription guarded by
//! live P95-utilization predictions.
//!
//! Compares four schedulers on the same arrival stream: Baseline (no
//! oversubscription), Naive (oversubscription without predictions), and
//! RC-informed with the utilization check as a soft and as a hard rule.
//!
//! ```bash
//! cargo run --release --example oversubscription_scheduling
//! ```

use rc_scheduler::{NoSource, P95Source, RcSource};
use rc_types::Timestamp;
use resource_central::prelude::*;

fn main() {
    let config =
        TraceConfig { target_vms: 15_000, n_subscriptions: 450, days: 30, ..TraceConfig::small() };
    println!("training Resource Central on the first 20 days...");
    let trace = Trace::generate(&config);
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(config.days))
        .expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    // Schedule the last 10 days of arrivals on a cluster sized to sit just
    // under Baseline's capacity cliff. Deployments too large for this
    // cluster go through cluster selection to a bigger one (§3.4).
    let from = Timestamp::from_days(20);
    let until = Timestamp::from_days(30);
    let unfiltered = VmRequest::stream(&trace, from, until, 16);
    let fleet_cores = 16.0 * suggest_server_count(&unfiltered, 16.0, 1.0) as f64;
    let requests = VmRequest::stream_filtered(
        &trace,
        from,
        until,
        16,
        Some(((fleet_cores * 0.08) as u32).max(64)),
    );
    let n_servers = suggest_server_count(&requests, 16.0, 0.97);
    println!("{} arrivals onto {} servers (16 cores / 112 GB each)\n", requests.len(), n_servers);

    println!(
        "{:<18} {:>9} {:>10} {:>14} {:>12}",
        "policy", "failures", "fail rate", ">100% readings", "mean util"
    );
    for policy in [
        PolicyKind::Baseline,
        PolicyKind::NaiveOversub,
        PolicyKind::RcInformedSoft,
        PolicyKind::RcInformedHard,
    ] {
        let source: Box<dyn P95Source> = if policy.uses_predictions() {
            Box::new(RcSource::new(client.clone()))
        } else {
            Box::new(NoSource)
        };
        let sim = SimConfig {
            n_servers,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler: SchedulerConfig::new(policy),
            util_shift: 0.0,
            tick_stride: 1,
            obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
            accuracy: None,
        };
        let report = simulate(&requests, &sim, source, (from, until));
        println!(
            "{:<18} {:>9} {:>9.3}% {:>14} {:>11.1}%",
            report.policy,
            report.n_failures,
            report.failure_rate() * 100.0,
            report.readings_above_100,
            report.mean_util_fraction * 100.0
        );
    }
    println!(
        "\nThe robust signal at demo scale is exhaustion control: Naive accepts the same \
         oversubscribed load but racks up thousands of >100% readings, while the predicted-P95 \
         cap keeps RC-informed placements near zero. Failure counts at this scale are dominated \
         by a handful of arrival bursts; the calibrated §6.2 comparison (where oversubscription \
         also wins on failures) runs at larger scale via:\n\n    cargo run --release -p rc-bench \
         --bin scheduler_compare"
    );
}
