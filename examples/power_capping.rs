//! The §4.1 "smart power oversubscription and capping" use-case.
//!
//! During a power emergency the capping system must shed load before a
//! circuit breaker trips. It queries Resource Central for workload-class
//! predictions and gives interactive VMs their full power draw while
//! throttling delay-insensitive ones — instead of capping everything
//! uniformly.
//!
//! ```bash
//! cargo run --release --example power_capping
//! ```

use rc_core::labels::vm_inputs;
use rc_types::Timestamp;
use resource_central::prelude::*;

/// Rough per-core power model in watts.
const WATTS_PER_CORE: f64 = 12.0;

fn main() {
    let config =
        TraceConfig { target_vms: 12_000, n_subscriptions: 400, days: 30, ..TraceConfig::small() };
    let trace = Trace::generate(&config);
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(config.days))
        .expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    // A rack of VMs alive on day 25, drawing full power.
    let now = Timestamp::from_days(25);
    // Stride across the alive population: taking the first N would pick
    // only day-0 survivors, i.e. the very longest-lived (interactive) VMs.
    let rack: Vec<VmId> =
        trace.vm_ids().filter(|&id| trace.vm(id).alive_at(now)).step_by(17).take(60).collect();
    let full_draw: f64 =
        rack.iter().map(|&id| trace.vm(id).sku.cores as f64 * WATTS_PER_CORE).sum();
    // Emergency: the breaker limit allows only 88% of the full draw.
    let budget = full_draw * 0.88;
    println!(
        "power emergency: rack of {} VMs draws {:.0} W, breaker budget {:.0} W",
        rack.len(),
        full_draw,
        budget
    );

    // Classify with RC; interactive (or unknown) VMs keep full power —
    // mistaking delay-insensitive for interactive is the safe direction
    // (§3.6), so only a *confident* DI prediction makes a VM cappable.
    let mut interactive_cores = 0.0;
    let mut unknown_cores = 0.0;
    let mut di_cores = 0.0;
    for &id in &rack {
        let inputs = vm_inputs(&trace, id);
        let cores = trace.vm(id).sku.cores as f64;
        match client.predict_single("VM_CLASS", &inputs).confident(0.6) {
            Some(p) if p.value == 0 => di_cores += cores,
            Some(_) => interactive_cores += cores,
            None => unknown_cores += cores,
        }
    }

    // Interactive and unclassified VMs get full power; DI VMs split the
    // remainder.
    let interactive_draw = (interactive_cores + unknown_cores) * WATTS_PER_CORE;
    let di_budget = (budget - interactive_draw).max(0.0);
    let di_full = di_cores * WATTS_PER_CORE;
    let di_cap = (di_budget / di_full.max(1e-9)).min(1.0);

    println!(
        "  interactive: {:.0} cores, unclassified: {:.0} cores -> {:.0} W (full power)",
        interactive_cores, unknown_cores, interactive_draw
    );
    println!(
        "  delay-insensitive:     {:.0} cores -> {:.0} W (capped to {:.0}% of full)",
        di_cores,
        di_full * di_cap,
        di_cap * 100.0
    );
    let uniform_cap = budget / full_draw;
    println!(
        "\nuniform capping would have slowed *every* VM to {:.0}% of full power —\n\
         class-aware capping concentrates the slowdown on workloads that tolerate it (§4.1).",
        uniform_cap * 100.0
    );
    assert!(
        interactive_draw + di_full * di_cap <= budget * 1.001,
        "the capped rack must fit the breaker budget"
    );
}
