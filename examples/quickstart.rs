//! Quickstart: the full Resource Central loop in one file.
//!
//! Generates a synthetic cloud workload, runs the offline learning
//! pipeline, publishes models + feature data to the (simulated) highly
//! available store, serves predictions through the client library, and
//! makes one oversubscription-aware scheduling decision with them.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rc_core::labels::vm_inputs;
use rc_types::buckets::UtilizationBucketizer;
use resource_central::prelude::*;

fn main() {
    // 1. A synthetic Azure-like workload (see rc-trace::calibration for
    //    the paper-derived distribution targets).
    let config =
        TraceConfig { target_vms: 12_000, n_subscriptions: 400, days: 30, ..TraceConfig::small() };
    println!("generating a {}-day trace with ~{} VMs...", config.days, config.target_vms);
    let trace = Trace::generate(&config);
    println!("  -> {} VMs across {} subscriptions\n", trace.n_vms(), trace.subscriptions.len());

    // 2. Offline: extract, aggregate, train, validate.
    println!("running the offline pipeline (train on the first 20 days)...");
    let output = run_pipeline(&trace, &PipelineConfig::fast(config.days)).expect("pipeline");
    for report in &output.reports {
        println!(
            "  {:<22} accuracy {:.2} on {} test examples",
            report.metric.label(),
            report.accuracy,
            report.n_test
        );
    }

    // 3. Publish to the store (with sanity checks), bring up a client.
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("models must pass sanity checks");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize(), "client loads models + feature data");
    println!("\nclient initialized; models: {:?}", client.get_available_models());

    // 4. Online: ask for predictions the way the VM scheduler would.
    let vm = VmId(trace.n_vms() as u64 / 2);
    let inputs = vm_inputs(&trace, vm);
    println!(
        "\npredictions for a VM of subscription {} ({} cores):",
        inputs.subscription.0,
        rc_types::vm::SKU_CATALOG[inputs.sku_index].cores
    );
    for metric in PredictionMetric::ALL {
        match client.predict_single(metric.model_name(), &inputs) {
            PredictionResponse::Predicted(p) => {
                println!("  {:<22} bucket {} (confidence {:.2})", metric.label(), p.value, p.score);
            }
            PredictionResponse::NoPrediction => {
                println!("  {:<22} no-prediction (caller must handle this)", metric.label());
            }
        }
    }

    // 5. One Algorithm 1 decision: how many cores should the scheduler
    //    charge this VM against an oversubscribable server's budget?
    let response = client.predict_single("VM_P95UTIL", &inputs);
    let cores = rc_types::vm::SKU_CATALOG[inputs.sku_index].cores as f64;
    let charged = match response.confident(0.6) {
        Some(p) => UtilizationBucketizer::highest_util_in_bucket(p.value) * cores,
        // Low confidence: "it is safest to assume 100% utilization".
        None => cores,
    };
    println!(
        "\nAlgorithm 1 would charge {charged:.1} of {cores:.0} allocated cores against MAX_UTIL"
    );
}
