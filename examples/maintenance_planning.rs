//! The §4.1 "scheduling server maintenance" use-case.
//!
//! A server starts to misbehave. The health manager asks Resource Central
//! for the expected *lifetimes* of the VMs currently on it, and decides
//! whether non-urgent maintenance can simply wait for the VMs to drain —
//! avoiding both live migration and customer-visible downtime.
//!
//! ```bash
//! cargo run --release --example maintenance_planning
//! ```

use rc_core::labels::vm_inputs;
use rc_types::buckets::{Bucketizer, LifetimeBucketizer};
use rc_types::Timestamp;
use resource_central::prelude::*;

/// Upper edge of each lifetime bucket, as the pessimistic drain estimate.
fn bucket_drain_hours(bucket: usize) -> f64 {
    match bucket {
        0 => 0.25,
        1 => 1.0,
        2 => 24.0,
        _ => f64::INFINITY,
    }
}

fn main() {
    let config =
        TraceConfig { target_vms: 12_000, n_subscriptions: 400, days: 30, ..TraceConfig::small() };
    let trace = Trace::generate(&config);
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(config.days))
        .expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    // Pretend a server hosts 8 VMs that are alive on day 25. Sampling
    // only recently-created residents avoids pure length-bias (a server's
    // long-time residents are, by construction, the long-lived VMs).
    let now = Timestamp::from_days(25);
    let fresh = Timestamp::from_days(24);
    let residents: Vec<VmId> = trace
        .vm_ids()
        .filter(|&id| {
            let vm = trace.vm(id);
            vm.alive_at(now) && vm.created >= fresh
        })
        .step_by(3)
        .take(8)
        .collect();
    assert!(!residents.is_empty(), "need live VMs on day 25");

    println!("server 0x2A17 reports correctable-memory errors; {} resident VMs", residents.len());
    println!(
        "{:<8} {:>6} {:>22} {:>14} {:>12}",
        "vm", "cores", "predicted lifetime", "confidence", "true bucket"
    );

    let bucketizer = LifetimeBucketizer;
    let mut drain_hours: f64 = 0.0;
    let mut migrations = 0usize;
    for &id in &residents {
        let vm = trace.vm(id);
        let inputs = vm_inputs(&trace, id);
        let response = client.predict_single("VM_LIFETIME", &inputs);
        let true_bucket = bucketizer.bucket(&vm.lifetime());
        match response.confident(0.6) {
            Some(p) => {
                let drain = bucket_drain_hours(p.value);
                println!(
                    "{:<8} {:>6} {:>22} {:>13.2} {:>12}",
                    id.0,
                    vm.sku.cores,
                    bucketizer.label(p.value),
                    p.score,
                    bucketizer.label(true_bucket)
                );
                if drain.is_infinite() {
                    migrations += 1;
                } else {
                    drain_hours = drain_hours.max(drain);
                }
            }
            None => {
                // No confident prediction: plan conservatively.
                println!(
                    "{:<8} {:>6} {:>22} {:>13} {:>12}",
                    id.0,
                    vm.sku.cores,
                    "no-prediction",
                    "-",
                    bucketizer.label(true_bucket)
                );
                migrations += 1;
            }
        }
    }

    println!();
    if migrations == 0 {
        println!(
            "plan: defer maintenance ~{drain_hours:.0}h; every VM is predicted to drain by \
             itself — no live migration, no downtime."
        );
    } else {
        println!(
            "plan: {migrations} VM(s) predicted to outlive any reasonable wait (or had no \
             confident prediction) and would need live migration; the other {} drain within \
             ~{drain_hours:.0}h.",
            residents.len() - migrations
        );
    }
}
