//! The §4.1 "smart cluster selection" use-case.
//!
//! Before placing a new deployment, the cluster selector asks Resource
//! Central how large the deployment will likely become and picks a
//! cluster with enough free capacity — avoiding later deployment
//! failures when the group grows (each deployment must fit in one
//! cluster, §3.4).
//!
//! ```bash
//! cargo run --release --example cluster_selection
//! ```

use resource_central::prelude::*;

use rc_types::Timestamp;

/// Pessimistic capacity reservation (in VMs) for a predicted size bucket:
/// the bucket's upper edge, with a modest cap for the open-ended bucket.
fn reserve_for_bucket(bucket: usize) -> u64 {
    match bucket {
        0 => 1,
        1 => 10,
        2 => 100,
        _ => 400,
    }
}

fn main() {
    let config =
        TraceConfig { target_vms: 12_000, n_subscriptions: 400, days: 30, ..TraceConfig::small() };
    let trace = Trace::generate(&config);
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(config.days))
        .expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    // Three clusters with different free capacity (in VM slots).
    let mut free = [2_000u64, 350, 40];
    let mut placed = 0usize;
    let mut reserved_ok = 0usize;

    // Replay the test month's deployment requests through the selector.
    let cutoff = Timestamp::from_days(20);
    let deployments: Vec<_> = rc_core::label_deployments(&trace)
        .into_iter()
        .filter(|d| d.inputs.deployment_time >= cutoff)
        .take(200)
        .collect();
    println!("selecting clusters for {} deployment requests...\n", deployments.len());

    for dep in &deployments {
        let reservation = match client.predict_single("DEP_SIZE_VMS", &dep.inputs).confident(0.6) {
            Some(p) => reserve_for_bucket(p.value),
            // No confident prediction: reserve for the common case but
            // route to the emptiest cluster.
            None => reserve_for_bucket(1),
        };
        // Pick the fullest cluster that still fits the reservation
        // (tight packing at cluster granularity).
        let choice = (0..free.len()).filter(|&c| free[c] >= reservation).min_by_key(|&c| free[c]);
        if let Some(c) = choice {
            free[c] -= dep.obs.n_vms.min(free[c]);
            placed += 1;
            if reservation >= dep.obs.n_vms {
                reserved_ok += 1;
            }
        }
        // A deployment that fits nowhere would be a placement failure;
        // with size predictions the selector avoids committing small
        // clusters to groups that will grow past them.
    }

    println!("placed {placed}/{} deployments", deployments.len());
    println!(
        "reservation covered the deployment's real growth for {} of them ({:.0}%)",
        reserved_ok,
        reserved_ok as f64 / placed.max(1) as f64 * 100.0
    );
    println!(
        "\nremaining free slots per cluster: {free:?} — size predictions let the selector \
         keep large deployments out of nearly-full clusters (§4.1)."
    );
}
